#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <stdlib.h>

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"

namespace upa {
namespace net {
namespace {

int64_t NowMs() { return static_cast<int64_t>(obs::NowNs() / 1000000u); }

/// Resolves ServerOptions::session_lease_ms: -1 = auto (the
/// UPA_SESSION_LEASE_MS env knob, default 0 = resumption off).
int ResolveLeaseMs(int opt) {
  if (opt >= 0) return opt;
  const char* env = ::getenv("UPA_SESSION_LEASE_MS");
  if (env != nullptr && *env != '\0') {
    const long v = ::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return 0;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Drains a self-pipe (reads and discards whatever is buffered).
void DrainPipe(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

void Poke(int fd) {
  const char b = 1;
  // The pipe is non-blocking; a full pipe already guarantees a wakeup.
  (void)!::write(fd, &b, 1);
}

Message MakeError(uint64_t req_id, std::string text) {
  Message m;
  m.type = MsgType::kError;
  m.req_id = req_id;
  m.text = std::move(text);
  return m;
}

/// The hub-side delivery callback for a channel. Holds the channel lock
/// across the whole delivery (see SubChannel in session.h): resume
/// adoption disarms under the same lock, so no event can land in a
/// half-moved session.
SubscriptionCallback ChannelCallback(const std::shared_ptr<SubChannel>& ch) {
  return [ch](const SubscriptionEvent& ev) {
    std::lock_guard<std::mutex> lock(ch->mu);
    if (!ch->armed) {
      ch->backlog.push_back(ev);
      return;
    }
    ch->session->OnSubEvent(ch->sub_id, ev);
  };
}

/// Engine-side subscribe + session-side registration. Returns null when
/// the query is unknown; otherwise the channel is attached but NOT yet
/// armed -- the caller queues its response frame first (so the client
/// sees the subscription exist before its first delta), then calls
/// ArmSubChannel.
std::shared_ptr<SubChannel> AttachSubscription(
    Engine* engine, const std::shared_ptr<Session>& s,
    const std::string& query, SubscriptionInfo* info) {
  auto ch = std::make_shared<SubChannel>();
  ch->session = s;
  const bool ok = engine->Subscribe(query, ChannelCallback(ch), info);
  if (!ok) return nullptr;
  s->AddSub(info->id, info->pattern);
  s->engine_subs[info->id] = query;
  s->channels[info->id] = ch;
  return ch;
}

void ArmSubChannel(const std::shared_ptr<SubChannel>& ch,
                   const std::shared_ptr<Session>& s, uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(ch->mu);
  ch->armed = true;
  ch->sub_id = sub_id;
  for (const SubscriptionEvent& ev : ch->backlog) {
    s->OnSubEvent(sub_id, ev);
  }
  ch->backlog.clear();
}

}  // namespace

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)), sql_(engine) {
  UPA_CHECK(engine_ != nullptr);
  lease_ms_ = ResolveLeaseMs(options_.session_lease_ms);
}

Server::~Server() { Stop(); }

int Server::OpenListener(int port, std::string* error, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address: " + options_.bind;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    if (error != nullptr) {
      *error = "bind/listen " + options_.bind + ":" + std::to_string(port) +
               ": " + strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  SetNonBlocking(fd);
  return fd;
}

bool Server::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) return true;
  if (options_.port < 0 && options_.metrics_port < 0) {
    if (error != nullptr) *error = "both listeners disabled";
    return false;
  }
  if (::pipe(poll_pipe_) != 0 || ::pipe(writer_pipe_) != 0) {
    if (error != nullptr) *error = "pipe: " + std::string(strerror(errno));
    return false;
  }
  for (int fd : {poll_pipe_[0], poll_pipe_[1], writer_pipe_[0],
                 writer_pipe_[1]}) {
    SetNonBlocking(fd);
  }
  if (options_.port >= 0) {
    listen_fd_ = OpenListener(options_.port, error, &port_);
    if (listen_fd_ < 0) return false;
  }
  if (options_.metrics_port >= 0) {
    metrics_fd_ = OpenListener(options_.metrics_port, error, &metrics_port_);
    if (metrics_fd_ < 0) {
      if (listen_fd_ >= 0) ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }
  token_seed_ = obs::NowNs() ^ 0x5851f42d4c957f2dull;
  stopping_.store(false, std::memory_order_release);
  poll_exited_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
  writer_thread_ = std::thread([this] { WriterLoop(); });
  return true;
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Release any engine thread blocked on a session's send cap before
  // joining: a poll thread stuck in an engine barrier can only return
  // once the blocked emitters are freed.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, s] : sessions_) s->MarkClosed();
    for (auto& [token, d] : detached_) d.session->MarkClosed();
  }
  WakePoll();
  WakeWriter();
  if (poll_thread_.joinable()) poll_thread_.join();
  if (writer_thread_.joinable()) writer_thread_.join();
  // The threads are gone; tear the sessions (live and detached) down on
  // this thread.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.reserve(sessions_.size() + detached_.size());
    for (auto& [id, s] : sessions_) sessions.push_back(s);
    for (auto& [token, d] : detached_) sessions.push_back(d.session);
    sessions_.clear();
    detached_.clear();
  }
  for (auto& s : sessions) TearDownSession(s);
  for (int* fd : {&listen_fd_, &metrics_fd_, &poll_pipe_[0], &poll_pipe_[1],
                  &writer_pipe_[0], &writer_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

void Server::WakePoll() { Poke(poll_pipe_[1]); }
void Server::WakeWriter() { Poke(writer_pipe_[1]); }

void Server::AcceptPending(int listen_fd, Session::Kind kind) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error: nothing more to accept.
    size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = sessions_.size();
    }
    if (active >= static_cast<size_t>(options_.max_sessions)) {
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>(
        next_session_id_++, fd, kind, options_.slow_consumer,
        options_.send_cap_bytes, options_.replay_ring_bytes,
        [this] { WakeWriter(); }, [this] { WakePoll(); });
    session->last_in_ms = NowMs();
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[session->id()] = session;
  }
}

bool Server::ReadSession(const std::shared_ptr<Session>& s) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(s->fd(), buf, sizeof(buf));
    if (n > 0) {
      s->in.append(buf, static_cast<size_t>(n));
      s->last_in_ms = NowMs();  // Any inbound byte counts as liveness.
      s->bytes_in.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return s->kind() == Session::Kind::kBinary ? HandleBinaryInput(s)
                                             : HandleHttpInput(s);
}

bool Server::HandleBinaryInput(const std::shared_ptr<Session>& s) {
  size_t off = 0;
  bool ok = true;
  while (ok) {
    Message m;
    size_t consumed = 0;
    const DecodeStatus status =
        DecodeFrame(s->in.data() + off, s->in.size() - off, &m, &consumed);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kOk) {
      // Framing is byte-positional: a corrupt frame means the stream can
      // never be resynchronized. Tell the client why, then drain-close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      s->QueueResponse(MakeError(0, status == DecodeStatus::kTooLarge
                                        ? "frame exceeds size limit"
                                        : "corrupt frame"));
      s->CloseAfterDrain();
      ok = false;
      break;
    }
    off += consumed;
    s->frames_in.fetch_add(1, std::memory_order_relaxed);
    ok = HandleRequest(s, std::move(m));
  }
  if (off > 0) s->in.erase(0, off);
  return ok;
}

bool Server::HandleHttpInput(const std::shared_ptr<Session>& s) {
  // Answer once the header block is complete (or clearly hostile).
  if (s->in.find("\r\n\r\n") == std::string::npos && s->in.size() < 8192 &&
      !s->in.empty()) {
    // Also answer bare "GET /metrics\n"-style probes once a newline is
    // seen: HandleMetricsRequest only needs the request line.
    if (s->in.find('\n') == std::string::npos) return true;
  }
  if (s->in.empty()) return true;
  const std::string response = HandleMetricsRequest(
      s->in, options_.metrics_render ? options_.metrics_render
                                     : metrics_render_);
  s->QueueBytes(response);
  s->CloseAfterDrain();
  s->in.clear();
  return true;
}

bool Server::HandleRequest(const std::shared_ptr<Session>& s, Message&& m) {
  if (!s->handshaken && m.type != MsgType::kHello) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    s->QueueResponse(MakeError(m.req_id, "handshake required"));
    s->CloseAfterDrain();
    return false;
  }
  // A client retrying its last un-acked request after a resume (same
  // req_id) gets the cached response replayed instead of re-executing
  // it -- exactly-once for non-idempotent requests like kIngestBatch.
  if (m.req_id != 0 && m.type != MsgType::kHello &&
      m.type != MsgType::kResume) {
    std::string cached;
    if (s->CachedResponse(m.req_id, &cached)) {
      s->QueueBytes(std::move(cached));
      return true;
    }
  }
  switch (m.type) {
    case MsgType::kHello: {
      // Every version up to ours is accepted (v1 clients simply cannot
      // use the v2-gated kSqlExec); newer versions are rejected.
      if (m.version < 1 || m.version > kProtocolVersion) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        s->QueueResponse(MakeError(
            m.req_id, "unsupported protocol version " +
                          std::to_string(m.version) + " (server speaks " +
                          std::to_string(kProtocolVersion) + ")"));
        s->CloseAfterDrain();
        return false;
      }
      s->handshaken = true;
      s->version = m.version;
      // Issue a session token when the server can offer resumption; a
      // zero token tells the client not to bother with kResume.
      if (lease_ms_ > 0 && s->kind() == Session::Kind::kBinary) {
        s->token = NextToken();
      }
      Message ack;
      ack.type = MsgType::kHelloAck;
      ack.req_id = m.req_id;
      ack.version = m.version;  // Echo the negotiated (client's) version.
      ack.name = options_.server_name;
      ack.token = s->token;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kDeclareStream:
    case MsgType::kDeclareRelation: {
      const bool is_stream = m.type == MsgType::kDeclareStream;
      const SourceDecl* existing = engine_->catalog()->Find(m.name);
      int64_t id = -1;
      if (existing != nullptr) {
        // Idempotent re-declaration (a client reconnecting to a durable
        // server finds its sources restored): same shape => same id.
        const SourceKind want =
            is_stream ? SourceKind::kStream
                      : (m.flag ? SourceKind::kRelation : SourceKind::kNrr);
        if (existing->kind == want && existing->schema == m.schema) {
          id = existing->stream_id;
        } else {
          s->QueueResponse(MakeError(
              m.req_id, "source '" + m.name +
                            "' already declared with a different shape"));
          return true;
        }
      } else {
        id = is_stream
                 ? engine_->DeclareStream(m.name, m.schema)
                 : engine_->DeclareRelation(m.name, m.schema, m.flag);
      }
      if (id < 0) {
        s->QueueResponse(MakeError(m.req_id, "declaration failed"));
        return true;
      }
      Message ack;
      ack.type = MsgType::kDeclareAck;
      ack.req_id = m.req_id;
      ack.id = id;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kRegisterQuery: {
      Message ack;
      ack.type = MsgType::kRegisterAck;
      ack.req_id = m.req_id;
      if (const RegisteredQuery* q = engine_->FindQuery(m.name)) {
        // Idempotent re-registration against a recovered server.
        if (q->sql() != m.text) {
          s->QueueResponse(MakeError(
              m.req_id, "query '" + m.name +
                            "' already registered with different SQL"));
          return true;
        }
        ack.name = m.name;
        ack.shards = static_cast<uint32_t>(q->num_shards());
        ack.flag = q->scheme().partitionable;
        ack.text = q->scheme().ToString();
        ack.pattern = static_cast<uint8_t>(q->plan().pattern);
        s->QueueResponse(ack);
        return true;
      }
      QueryOptions qopts;
      qopts.shards = static_cast<int>(m.shards);
      const RegisterResult r = engine_->RegisterSql(m.name, m.text, qopts);
      if (!r.ok) {
        s->QueueResponse(MakeError(m.req_id, r.error));
        return true;
      }
      const RegisteredQuery* q = engine_->FindQuery(m.name);
      ack.name = r.name;
      ack.shards = static_cast<uint32_t>(r.shards);
      ack.flag = r.partitioned;
      ack.text = r.partition_note;
      ack.pattern =
          q != nullptr ? static_cast<uint8_t>(q->plan().pattern) : 0;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kIngestBatch: {
      // Server-side ingest goes through Engine::Ingest, so it is WAL-
      // logged before routing when durability is on -- a networked
      // producer gets the same crash guarantees as an in-process one.
      for (const auto& [stream, tuple] : m.batch) {
        engine_->Ingest(static_cast<int>(stream), tuple);
      }
      Message ack;
      ack.type = MsgType::kIngestAck;
      ack.req_id = m.req_id;
      ack.id = static_cast<int64_t>(m.batch.size());
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kAdvance: {
      engine_->AdvanceTo(m.time);
      Message ack;
      ack.type = MsgType::kAdvanceAck;
      ack.req_id = m.req_id;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kFlush: {
      Message ack;
      ack.type = MsgType::kFlushAck;
      ack.req_id = m.req_id;
      // Watermarks (and any post-recovery resets) are published to the
      // session buffers inside Flush, before this ack is queued, so the
      // client observes them first.
      ack.flag = engine_->Flush();
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kSnapshotReq: {
      Message resp;
      resp.type = MsgType::kSnapshotResp;
      resp.req_id = m.req_id;
      resp.flag = engine_->Snapshot(m.name, &resp.tuples);
      resp.time = engine_->clock();
      s->QueueResponse(resp);
      return true;
    }
    case MsgType::kSubscribe:
      HandleSubscribe(s, m);
      return true;
    case MsgType::kUnsubscribe: {
      Message ack;
      ack.type = MsgType::kUnsubscribeAck;
      ack.req_id = m.req_id;
      ack.flag = engine_->Unsubscribe(m.name, m.sub_id);
      s->RemoveSub(m.sub_id);
      s->engine_subs.erase(m.sub_id);
      s->channels.erase(m.sub_id);
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kSqlExec: {
      if (!options_.enable_sql) {
        s->QueueResponse(MakeError(
            m.req_id, "SQL sessions are disabled on this server"));
        return true;
      }
      if (s->version < 2) {
        s->QueueResponse(MakeError(
            m.req_id, "kSqlExec requires protocol version 2 (session "
                      "negotiated version " +
                          std::to_string(s->version) + ")"));
        return true;
      }
      HandleSqlExec(s, m);
      return true;
    }
    case MsgType::kPing: {
      Message pong;
      pong.type = MsgType::kPong;
      pong.req_id = m.req_id;
      s->QueueResponse(pong);
      return true;
    }
    case MsgType::kPong:
      // The answer to a server heartbeat; ReadSession already recorded
      // the liveness.
      return true;
    case MsgType::kResume:
      HandleResume(s, m);
      return true;
    default: {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      s->QueueResponse(MakeError(
          m.req_id, std::string("unexpected message type ") +
                        MsgTypeName(m.type)));
      s->CloseAfterDrain();
      return false;
    }
  }
}

void Server::HandleSubscribe(const std::shared_ptr<Session>& s,
                             const Message& m) {
  SubscriptionInfo info;
  auto ch = AttachSubscription(engine_, s, m.name, &info);
  if (ch == nullptr) {
    s->QueueResponse(MakeError(m.req_id, "unknown query '" + m.name + "'"));
    return;
  }
  // Ack (with the starting snapshot) before draining the backlog, so the
  // client sees the subscription exist before its first delta.
  Message ack;
  ack.type = MsgType::kSubscribeAck;
  ack.req_id = m.req_id;
  ack.flag = true;
  ack.sub_id = info.id;
  ack.pattern = static_cast<uint8_t>(info.pattern);
  ack.view_kind = static_cast<uint8_t>(info.view_kind);
  ack.time = engine_->clock();
  ack.tuples = std::move(info.snapshot);
  s->QueueResponse(ack);
  ArmSubChannel(ch, s, info.id);
}

void Server::SweepQuerySubs(const std::string& query) {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    all.reserve(sessions_.size() + detached_.size());
    for (auto& [id, sess] : sessions_) all.push_back(sess);
    // Detached sessions hold subs too; forgetting them here makes their
    // eventual resume report the sub as dropped (disposition 2).
    for (auto& [token, d] : detached_) all.push_back(d.session);
  }
  for (auto& sess : all) {
    if (sess->kind() != Session::Kind::kBinary) continue;
    for (auto it = sess->engine_subs.begin();
         it != sess->engine_subs.end();) {
      if (it->second != query) {
        ++it;
        continue;
      }
      const uint64_t sub_id = it->first;
      sess->RemoveSub(sub_id);
      sess->channels.erase(sub_id);
      it = sess->engine_subs.erase(it);
      Message drop;
      drop.type = MsgType::kSubDropped;
      drop.req_id = 0;
      drop.sub_id = sub_id;
      sess->QueueResponse(drop);
    }
  }
}

void Server::HandleSqlExec(const std::shared_ptr<Session>& s,
                           const Message& m) {
  Message resp;
  resp.type = MsgType::kSqlResult;
  resp.req_id = m.req_id;
  resp.id = -1;

  sqlsession::SqlResult r = sql_.Execute(m.text);
  if (!r.ok) {
    resp.flag = false;
    resp.text = std::move(r.error);
    resp.name = std::move(r.context);
    if (r.error_offset != ParseResult::kNoOffset) {
      resp.id = static_cast<int64_t>(r.error_offset);
    }
    s->QueueResponse(resp);
    return;
  }

  switch (r.action) {
    case sqlsession::SqlResult::Action::kSubscribe: {
      SubscriptionInfo info;
      auto ch = AttachSubscription(engine_, s, r.action_query, &info);
      if (ch == nullptr) {
        // The query disappeared between the session's check and the
        // attach (another session unregistered it).
        resp.flag = false;
        resp.text = "no query named '" + r.action_query + "' is registered";
        s->QueueResponse(resp);
        return;
      }
      resp.flag = true;
      resp.text = std::move(r.text);
      resp.name = r.action_query;  // Query name (clients key mirrors on it).
      resp.sub_id = info.id;
      resp.pattern = static_cast<uint8_t>(info.pattern);
      resp.view_kind = static_cast<uint8_t>(info.view_kind);
      resp.time = engine_->clock();
      resp.tuples = std::move(info.snapshot);
      s->QueueResponse(resp);
      ArmSubChannel(ch, s, info.id);
      return;
    }
    case sqlsession::SqlResult::Action::kUnsubscribe: {
      // Detach every subscription this session holds on the query.
      int removed = 0;
      for (auto it = s->engine_subs.begin(); it != s->engine_subs.end();) {
        if (it->second != r.action_query) {
          ++it;
          continue;
        }
        engine_->Unsubscribe(it->second, it->first);
        s->RemoveSub(it->first);
        // Uniform drop signal so client-side mirrors notice without
        // tracking which statement removed them.
        Message drop;
        drop.type = MsgType::kSubDropped;
        drop.req_id = 0;
        drop.sub_id = it->first;
        s->QueueResponse(drop);
        s->channels.erase(it->first);
        it = s->engine_subs.erase(it);
        ++removed;
      }
      if (removed == 0) {
        resp.flag = false;
        resp.text = "no subscription to '" + r.action_query +
                    "' on this session";
        s->QueueResponse(resp);
        return;
      }
      resp.flag = true;
      resp.text = std::move(r.text);
      s->QueueResponse(resp);
      return;
    }
    case sqlsession::SqlResult::Action::kUnregistered:
      // Engine-side teardown is done (shards joined, hub destroyed);
      // notify and forget every session's subs on the dropped query.
      SweepQuerySubs(r.action_query);
      break;
    case sqlsession::SqlResult::Action::kNone:
      break;
  }
  resp.flag = true;
  resp.text = std::move(r.text);
  s->QueueResponse(resp);
}

void Server::ReapDropped(const std::shared_ptr<Session>& s) {
  for (uint64_t sub_id : s->TakeDropped()) {
    auto it = s->engine_subs.find(sub_id);
    if (it == s->engine_subs.end()) continue;
    engine_->Unsubscribe(it->second, sub_id);
    s->engine_subs.erase(it);
    s->channels.erase(sub_id);
  }
}

void Server::TearDownSession(const std::shared_ptr<Session>& s) {
  s->MarkClosed();
  for (const auto& [sub_id, query] : s->engine_subs) {
    engine_->Unsubscribe(query, sub_id);
  }
  s->engine_subs.clear();
  s->channels.clear();
  closed_frames_in_.fetch_add(s->frames_in.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  closed_frames_out_.fetch_add(s->frames_out.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  closed_bytes_in_.fetch_add(s->bytes_in.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  closed_bytes_out_.fetch_add(s->bytes_out.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  closed_slow_drops_.fetch_add(s->slow_drops.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  closed_ring_overruns_.fetch_add(
      s->ring_overruns.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void Server::CloseSession(const std::shared_ptr<Session>& s) {
  TearDownSession(s);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(s->id());
}

void Server::DisconnectSession(const std::shared_ptr<Session>& s) {
  const bool resumable =
      s->kind() == Session::Kind::kBinary && s->handshaken &&
      s->token != 0 && !s->engine_subs.empty() && lease_ms_ > 0 &&
      !stopping_.load(std::memory_order_acquire);
  if (!resumable) {
    CloseSession(s);
    return;
  }
  // Keep the session alive under the lease: subscriptions stay attached
  // and feed the replay rings. EOF is indistinguishable from a crash on
  // the wire, so even a graceful peer close lands here -- the lease (or
  // the client's own kResume) is what reclaims the state.
  s->Detach();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(s->id());
  detached_[s->token] = Detached{s, NowMs() + lease_ms_};
}

void Server::RunTimers() {
  const int64_t now = NowMs();
  // Lease expiry: a detached session whose client never resumed.
  std::vector<std::shared_ptr<Session>> expired;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = detached_.begin(); it != detached_.end();) {
      if (now >= it->second.deadline_ms) {
        expired.push_back(it->second.session);
        it = detached_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& s : expired) {
    TearDownSession(s);
    leases_expired_.fetch_add(1, std::memory_order_relaxed);
  }

  // Heartbeats: ping silent sessions, reap the truly dead.
  if (options_.heartbeat_ms <= 0) return;
  const int64_t interval = options_.heartbeat_ms;
  const int64_t timeout = options_.heartbeat_timeout_ms > 0
                              ? options_.heartbeat_timeout_ms
                              : 4 * interval;
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    live.reserve(sessions_.size());
    for (auto& [id, s] : sessions_) live.push_back(s);
  }
  for (auto& s : live) {
    if (s->kind() != Session::Kind::kBinary || !s->handshaken ||
        s->closed() || s->disconnected()) {
      continue;
    }
    if (now - s->last_in_ms >= timeout) {
      heartbeat_timeouts_.fetch_add(1, std::memory_order_relaxed);
      // A stalled-but-alive client (GC pause, network partition) can
      // still resume within the lease; only the socket is given up.
      DisconnectSession(s);
      continue;
    }
    if (now - s->last_in_ms >= interval &&
        now - s->ping_sent_ms >= interval) {
      Message ping;
      ping.type = MsgType::kPing;
      ping.req_id = 0;  // Unsolicited: the pong also carries req_id 0.
      s->QueueResponse(ping);
      s->ping_sent_ms = now;
    }
  }
}

uint64_t Server::NextToken() {
  // splitmix64: deterministic walk from a time-seeded origin; tokens
  // are unguessable enough for loopback use and never zero.
  uint64_t x = (token_seed_ += 0x9e3779b97f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x != 0 ? x : 1;
}

void Server::HandleResume(const std::shared_ptr<Session>& s,
                          const Message& m) {
  Message ack;
  ack.type = MsgType::kResumeAck;
  ack.req_id = m.req_id;
  if (lease_ms_ <= 0) {
    ack.flag = false;
    ack.text = "session resumption is disabled on this server";
    resume_rejects_.fetch_add(1, std::memory_order_relaxed);
    s->QueueResponse(ack);
    return;
  }
  if (!s->engine_subs.empty()) {
    ack.flag = false;
    ack.text = "kResume must precede any subscription on the session";
    resume_rejects_.fetch_add(1, std::memory_order_relaxed);
    s->QueueResponse(ack);
    return;
  }
  // Find the token's session: usually detached, but a half-open zombie
  // (peer vanished without the server noticing) may still be live --
  // force-detach it so its state can be adopted.
  std::shared_ptr<Session> old;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = detached_.find(m.token);
    if (it != detached_.end()) {
      old = it->second.session;
      detached_.erase(it);  // A token resumes at most once.
    } else {
      for (auto& [id, sess] : sessions_) {
        if (sess->token == m.token && sess.get() != s.get() &&
            sess->kind() == Session::Kind::kBinary) {
          old = sess;
          break;
        }
      }
      if (old != nullptr) sessions_.erase(old->id());
    }
  }
  if (old == nullptr) {
    ack.flag = false;
    ack.text = "unknown or expired session token";
    resume_rejects_.fetch_add(1, std::memory_order_relaxed);
    s->QueueResponse(ack);
    return;
  }
  if (!old->detached()) old->Detach();

  // Adoption. Disarm every channel under its lock first: after this
  // loop no delivery is mid-flight into `old`, and new events buffer in
  // the channel backlogs until re-armed below.
  for (auto& [sub_id, ch] : old->channels) {
    std::lock_guard<std::mutex> lock(ch->mu);
    ch->armed = false;
    ch->session = s;
  }
  s->AdoptFrom(*old);
  s->engine_subs = std::move(old->engine_subs);
  old->engine_subs.clear();
  s->channels = std::move(old->channels);
  old->channels.clear();
  TearDownSession(old);  // Subs/channels already moved; rolls counters.

  std::map<uint64_t, uint64_t> client_acks(m.acks.begin(), m.acks.end());
  // Subscriptions the client does not even know about (its kSubscribe
  // ack was lost in flight) are orphans: unsubscribe and forget, no
  // disposition entry. The client re-subscribes with a fresh req_id.
  for (auto it = s->engine_subs.begin(); it != s->engine_subs.end();) {
    if (client_acks.count(it->first) != 0) {
      ++it;
      continue;
    }
    engine_->Unsubscribe(it->second, it->first);
    s->RemoveSub(it->first);
    s->channels.erase(it->first);
    it = s->engine_subs.erase(it);
  }

  // Per-subscription catch-up decision (DESIGN.md Section 17): replay
  // the ring suffix when it still covers the client's ack, else fall
  // back to a consistent snapshot through the barrier-coupled
  // Resubscribe path.
  std::vector<std::shared_ptr<SubChannel>> to_arm;
  for (const auto& [sub_id, last_acked] : client_acks) {
    auto sub_it = s->engine_subs.find(sub_id);
    if (sub_it == s->engine_subs.end()) {
      ack.acks.emplace_back(sub_id, kResumeDropped);
      continue;
    }
    const std::string& query = sub_it->second;
    auto ch_it = s->channels.find(sub_id);
    if (ch_it == s->channels.end()) {
      // Bookkeeping hole; treat as dropped rather than guess.
      engine_->Unsubscribe(query, sub_id);
      s->RemoveSub(sub_id);
      s->engine_subs.erase(sub_it);
      ack.acks.emplace_back(sub_id, kResumeDropped);
      continue;
    }
    if (s->CanReplay(sub_id, last_acked)) {
      s->ReplayFrom(sub_id, last_acked);
      resume_replays_.fetch_add(1, std::memory_order_relaxed);
      ack.acks.emplace_back(sub_id, kResumeReplayed);
      to_arm.push_back(ch_it->second);
      continue;
    }
    // Ring overrun (or a bogus ack): re-couple the existing engine
    // subscription to a fresh channel and push the snapshot the barrier
    // captured as a kSubReset. The sub_id is stable across Resubscribe,
    // so the client's mirror just resets in place.
    auto ch2 = std::make_shared<SubChannel>();
    ch2->session = s;
    ch2->sub_id = sub_id;
    std::vector<Tuple> snapshot;
    if (!engine_->Resubscribe(query, sub_id, ChannelCallback(ch2),
                              &snapshot)) {
      engine_->Unsubscribe(query, sub_id);
      s->RemoveSub(sub_id);
      s->channels.erase(sub_id);
      s->engine_subs.erase(sub_it);
      ack.acks.emplace_back(sub_id, kResumeDropped);
      continue;
    }
    ch_it->second = ch2;
    s->PushReset(sub_id, std::move(snapshot));
    resume_snapshots_.fetch_add(1, std::memory_order_relaxed);
    ack.acks.emplace_back(sub_id, kResumeSnapshot);
    to_arm.push_back(ch2);
  }

  resumes_.fetch_add(1, std::memory_order_relaxed);
  ack.flag = true;
  s->QueueResponse(ack);
  // Arm after the ack so backlogged deltas follow it (sequence numbers
  // make the order client-verifiable either way).
  for (auto& ch : to_arm) {
    std::lock_guard<std::mutex> lock(ch->mu);
    ch->armed = true;
    for (const SubscriptionEvent& ev : ch->backlog) {
      s->OnSubEvent(ch->sub_id, ev);
    }
    ch->backlog.clear();
  }
}

void Server::PollLoop() {
  metrics_render_ = [this] {
    return engine_->Metrics().ToPrometheus() +
           obs::MetricsRegistry::Global().RenderPrometheus();
  };
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Session>> polled;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    polled.clear();
    fds.push_back({poll_pipe_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    if (metrics_fd_ >= 0) fds.push_back({metrics_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [id, s] : sessions_) {
        if (s->closed() || s->close_after_drain()) continue;
        polled.push_back(s);
        fds.push_back({s->fd(), POLLIN, 0});
      }
    }
    const int n = ::poll(fds.data(), fds.size(), 100);
    if (stopping_.load(std::memory_order_acquire)) break;
    size_t idx = 0;
    if (fds[idx].revents & POLLIN) DrainPipe(poll_pipe_[0]);
    ++idx;
    if (listen_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) {
        AcceptPending(listen_fd_, Session::Kind::kBinary);
      }
      ++idx;
    }
    if (metrics_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) {
        AcceptPending(metrics_fd_, Session::Kind::kHttp);
      }
      ++idx;
    }
    if (n > 0) {
      for (size_t i = 0; i < polled.size(); ++i) {
        const short re = fds[idx + i].revents;
        if (re == 0) continue;
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) {
          if (!ReadSession(polled[i])) {
            // EOF or read error: resumable sessions detach under the
            // lease instead of closing (a crash and a graceful close
            // are indistinguishable on the wire).
            if (!polled[i]->close_after_drain()) {
              DisconnectSession(polled[i]);
            }
          }
        }
      }
    }
    // Housekeeping: flush idle delta batches, unsubscribe slow-consumer
    // drops, reap dead/disconnected sessions, run lease + heartbeat
    // timers, refresh exported metrics.
    std::vector<std::shared_ptr<Session>> all;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      all.reserve(sessions_.size());
      for (auto& [id, s] : sessions_) all.push_back(s);
    }
    for (auto& s : all) {
      if (s->kind() == Session::Kind::kBinary) {
        s->FlushPending();
        ReapDropped(s);
      }
      if (s->closed()) {
        CloseSession(s);
      } else if (s->disconnected()) {
        // The writer hit a send error; decide detach-vs-close here.
        DisconnectSession(s);
      }
    }
    RunTimers();
    ExportMetrics();
  }
  poll_exited_.store(true, std::memory_order_release);
  WakeWriter();
}

void Server::WriterLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Session>> writable;
  while (!(stopping_.load(std::memory_order_acquire) &&
           poll_exited_.load(std::memory_order_acquire))) {
    fds.clear();
    writable.clear();
    fds.push_back({writer_pipe_[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [id, s] : sessions_) {
        // Detached/disconnected sessions have no live socket; the poll
        // thread owns their fate.
        if (s->closed() || s->detached() || s->disconnected()) continue;
        if (s->HasOutput() || s->close_after_drain()) {
          writable.push_back(s);
          fds.push_back({s->fd(), POLLOUT, 0});
        }
      }
    }
    ::poll(fds.data(), fds.size(), 50);
    if (fds[0].revents & POLLIN) DrainPipe(writer_pipe_[0]);
    for (size_t i = 0; i < writable.size(); ++i) {
      const std::shared_ptr<Session>& s = writable[i];
      if (s->closed() || s->detached()) continue;
      if ((fds[1 + i].revents & (POLLERR | POLLHUP)) != 0) {
        // Socket loss is the poll thread's call: it may be resumable.
        s->MarkDisconnected();
        WakePoll();
        continue;
      }
      if ((fds[1 + i].revents & POLLOUT) == 0 && s->HasOutput()) continue;
      if (s->residual.empty()) s->TakeOutput(&s->residual);
      while (!s->residual.empty()) {
        const ssize_t n =
            ::send(s->fd(), s->residual.data(), s->residual.size(),
                   MSG_NOSIGNAL);
        if (n > 0) {
          s->bytes_out.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
          s->residual.erase(0, static_cast<size_t>(n));
          // Refill from the buffer so a blocked emitter is released as
          // soon as its bytes are in flight.
          if (s->residual.empty()) s->TakeOutput(&s->residual);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        s->MarkDisconnected();
        WakePoll();
        break;
      }
      if (s->disconnected()) continue;
      if (s->residual.empty() && !s->HasOutput() && s->close_after_drain()) {
        s->MarkClosed();
        WakePoll();
      }
    }
  }
}

void Server::ExportMetrics() {
  const ServerStats now = Stats();
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("upa_net_sessions_total")
      .Add(now.sessions_opened - exported_.sessions_opened);
  reg.GetCounter("upa_net_frames_in_total")
      .Add(now.frames_in - exported_.frames_in);
  reg.GetCounter("upa_net_frames_out_total")
      .Add(now.frames_out - exported_.frames_out);
  reg.GetCounter("upa_net_bytes_in_total")
      .Add(now.bytes_in - exported_.bytes_in);
  reg.GetCounter("upa_net_bytes_out_total")
      .Add(now.bytes_out - exported_.bytes_out);
  reg.GetCounter("upa_net_protocol_errors_total")
      .Add(now.protocol_errors - exported_.protocol_errors);
  reg.GetCounter("upa_net_slow_drops_total")
      .Add(now.slow_drops - exported_.slow_drops);
  reg.GetCounter("upa_net_resumes_total")
      .Add(now.resumes - exported_.resumes);
  reg.GetCounter("upa_net_resume_replays_total")
      .Add(now.resume_replays - exported_.resume_replays);
  reg.GetCounter("upa_net_resume_snapshots_total")
      .Add(now.resume_snapshots - exported_.resume_snapshots);
  reg.GetCounter("upa_net_resume_rejects_total")
      .Add(now.resume_rejects - exported_.resume_rejects);
  reg.GetCounter("upa_net_leases_expired_total")
      .Add(now.leases_expired - exported_.leases_expired);
  reg.GetCounter("upa_net_heartbeat_timeouts_total")
      .Add(now.heartbeat_timeouts - exported_.heartbeat_timeouts);
  reg.GetCounter("upa_net_replay_ring_overruns_total")
      .Add(now.replay_ring_overruns - exported_.replay_ring_overruns);
  reg.GetGauge("upa_net_sessions_active")
      .Set(static_cast<int64_t>(now.sessions_active));
  reg.GetGauge("upa_net_subscriptions")
      .Set(static_cast<int64_t>(now.subscriptions));
  reg.GetGauge("upa_net_detached_sessions")
      .Set(static_cast<int64_t>(now.detached_sessions));
  reg.GetGauge("upa_net_replay_ring_bytes")
      .Set(static_cast<int64_t>(now.replay_ring_bytes));
  exported_ = now;
}

ServerStats Server::Stats() const {
  ServerStats st;
  st.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  st.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  st.resumes = resumes_.load(std::memory_order_relaxed);
  st.resume_replays = resume_replays_.load(std::memory_order_relaxed);
  st.resume_snapshots = resume_snapshots_.load(std::memory_order_relaxed);
  st.resume_rejects = resume_rejects_.load(std::memory_order_relaxed);
  st.leases_expired = leases_expired_.load(std::memory_order_relaxed);
  st.heartbeat_timeouts =
      heartbeat_timeouts_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  st.sessions_active = sessions_.size();
  st.detached_sessions = detached_.size();
  const auto fold = [&st](const std::shared_ptr<Session>& s) {
    st.slow_drops += s->slow_drops.load(std::memory_order_relaxed);
    st.frames_in += s->frames_in.load(std::memory_order_relaxed);
    st.frames_out += s->frames_out.load(std::memory_order_relaxed);
    st.bytes_in += s->bytes_in.load(std::memory_order_relaxed);
    st.bytes_out += s->bytes_out.load(std::memory_order_relaxed);
    st.subscriptions += s->engine_subs.size();
    st.replay_ring_bytes += s->ring_bytes();
    st.replay_ring_overruns +=
        s->ring_overruns.load(std::memory_order_relaxed);
  };
  for (const auto& [id, s] : sessions_) fold(s);
  for (const auto& [token, d] : detached_) fold(d.session);
  st.frames_in += closed_frames_in_.load(std::memory_order_relaxed);
  st.frames_out += closed_frames_out_.load(std::memory_order_relaxed);
  st.bytes_in += closed_bytes_in_.load(std::memory_order_relaxed);
  st.bytes_out += closed_bytes_out_.load(std::memory_order_relaxed);
  st.slow_drops += closed_slow_drops_.load(std::memory_order_relaxed);
  st.replay_ring_overruns +=
      closed_ring_overruns_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace net
}  // namespace upa
