#include "net/fault_socket.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>

namespace upa {
namespace net {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

FaultProxy::FaultProxy(FaultProxyOptions options)
    : options_(std::move(options)), rng_state_(options_.seed) {}

FaultProxy::~FaultProxy() { Stop(); }

bool FaultProxy::Start(std::string* error) {
  if (running_.load()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral.
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
  if (::pipe(wake_pipe_) != 0) {
    if (error != nullptr) *error = "pipe: " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void FaultProxy::Stop() {
  if (!running_.exchange(false)) return;
  if (wake_pipe_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  for (Conn& c : conns_) Abort(&c, /*rst=*/false);
  conns_.clear();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
  port_ = -1;
}

void FaultProxy::Run() {
  while (running_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns_) {
      fds.push_back({c.client_fd, POLLIN, 0});
      fds.push_back({c.server_fd, POLLIN, 0});
    }
    if (::poll(fds.data(), fds.size(), 100) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (!running_.load()) return;
    if ((fds[0].revents & POLLIN) != 0) {
      char buf[16];
      [[maybe_unused]] ssize_t n = ::read(wake_pipe_[0], buf, sizeof(buf));
    }
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        const int sfd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in target{};
        target.sin_family = AF_INET;
        target.sin_port = htons(static_cast<uint16_t>(options_.target_port));
        ::inet_pton(AF_INET, options_.target_host.c_str(), &target.sin_addr);
        if (sfd < 0 || ::connect(sfd, reinterpret_cast<sockaddr*>(&target),
                                 sizeof(target)) < 0) {
          ::close(cfd);
          if (sfd >= 0) ::close(sfd);
          continue;
        }
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        ::setsockopt(sfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns_.push_back(Conn{cfd, sfd});
        connections_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Pump both directions of each connection whose source is readable;
    // POLLHUP/POLLERR surface through read() inside Pump. The pollfd
    // snapshot indexes the pre-accept prefix of conns_, so dead entries
    // are swept only after the pass.
    const size_t polled = (fds.size() - 2) / 2;
    for (size_t i = 0; i < polled; ++i) {
      Conn& c = conns_[i];
      for (int dir = 0; dir < 2; ++dir) {
        const pollfd& p = fds[2 + 2 * i + static_cast<size_t>(dir)];
        if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (!Pump(&c, dir)) break;  // Abort() already closed both fds.
      }
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.client_fd < 0; }),
                 conns_.end());
  }
}

bool FaultProxy::Pump(Conn* c, int dir) {
  const int src = dir == 0 ? c->client_fd : c->server_fd;
  const int dst = dir == 0 ? c->server_fd : c->client_fd;
  char buf[64 * 1024];
  const ssize_t n = ::read(src, buf, sizeof(buf));
  if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK)) {
    // Peer gone: propagate an orderly close (no RST -- injected resets
    // are the only aborts, so rsts_injected() counts exactly the
    // scheduled faults).
    Abort(c, /*rst=*/false);
    return false;
  }
  if (n < 0) return true;  // EINTR/EAGAIN: try again next round.
  size_t off = 0;
  while (off < static_cast<size_t>(n)) {
    const size_t room = std::min(options_.max_chunk_bytes,
                                 static_cast<size_t>(n) - off);
    const size_t chunk = 1 + SplitMix64(&rng_state_) % room;
    if (options_.injector != nullptr) {
      const FaultInjector::NetAction action =
          options_.injector->OnNetBytes(dir, chunk);
      if (action.delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
      }
      if (action.rst) {
        // The triggering chunk is lost with the connection: the abort
        // cuts mid-stream, which is what forces the client's resume
        // path to reconcile a half-delivered frame.
        Abort(c, /*rst=*/true);
        rsts_injected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    if (!WriteAll(dst, buf + off, chunk)) {
      Abort(c, /*rst=*/false);
      return false;
    }
    bytes_forwarded_.fetch_add(chunk, std::memory_order_relaxed);
    off += chunk;
  }
  return true;
}

void FaultProxy::Abort(Conn* c, bool rst) {
  for (int* fd : {&c->client_fd, &c->server_fd}) {
    if (*fd < 0) continue;
    if (rst) {
      // Abortive close: linger{on, 0} turns close() into a TCP RST, the
      // real connection-reset a crashed peer or middlebox produces.
      linger lg{1, 0};
      ::setsockopt(*fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    }
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace net
}  // namespace upa
