#ifndef UPA_NET_PROTOCOL_H_
#define UPA_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"

namespace upa {
namespace net {

/// The engine's binary wire protocol.
///
/// Framing (everything little-endian, mirroring the WAL record format):
///
///   frame    := magic:u32 | length:u32 | crc:u32 | payload
///   magic    := 0x4e415055 ("UPAN")
///   length   := byte count of `payload` (bounded by kMaxFrameBytes)
///   crc      := MaskCrc32c(Crc32c(payload))  -- masked like the WAL so a
///               frame stored and re-framed does not CRC its own CRC
///   payload  := type:u8 | req_id:u64 | body
///
/// The body grammar per message type is the serde encoding of the fields
/// listed next to each MsgType below (see src/state/serde.h for the
/// primitive encodings). Decoders must consume the payload exactly
/// (serde::Reader::AtEnd); trailing bytes are corruption, not padding.
///
/// Conversation model: the client opens with kHello and must receive
/// kHelloAck (version handshake) before anything else. After that the
/// client sends requests with its own nonzero `req_id`s; the server
/// answers each with exactly one response frame carrying the same
/// req_id (kError for failures). Server-initiated subscription pushes
/// (kSubData, kSubWatermark, kSubReset, kSubDropped) carry req_id 0 and
/// may be interleaved between a request and its response; the blocking
/// client dispatches them to subscription handles while waiting.

inline constexpr uint32_t kMagic = 0x4e415055;  // "UPAN"
/// Version 2 added the text-SQL session messages (kSqlExec/kSqlResult).
/// The server still accepts version-1 clients; they just cannot issue
/// kSqlExec (it is answered with kError on a v1 session).
///
/// Version 3 adds resumable sessions: kHelloAck carries a server-issued
/// session token, every kSubData/kSubWatermark/kSubReset push is stamped
/// with a per-subscription sequence number (`seq`, monotonically
/// increasing from 1, one counter per sub_id shared by all three push
/// kinds), and kResume/kResumeAck let a reconnecting client adopt its
/// previous session's subscriptions from the server's replay ring
/// (DESIGN.md Section 17). Older clients interoperate: tokens and seqs
/// are advisory unless the client sends kResume.
inline constexpr uint32_t kProtocolVersion = 3;
/// Hard frame cap: a length field above this is treated as corruption
/// before any allocation happens.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;
/// Bytes before the payload: magic, length, masked CRC.
inline constexpr size_t kFrameHeaderBytes = 12;

enum class MsgType : uint8_t {
  // Session establishment.
  kHello = 1,         ///< version:u32, name:str (client name, advisory).
  kHelloAck = 2,      ///< version:u32, name:str (server name),
                      ///< token:u64 (session token; 0 when the server
                      ///< cannot offer resumption).
  kError = 3,         ///< text:str (response to the failing req_id).

  // Catalog and registration.
  kDeclareStream = 4,    ///< name:str, schema.
  kDeclareRelation = 5,  ///< name:str, schema, flag:u8 (retroactive).
  kDeclareAck = 6,       ///< id:i64 (stream id, -1 on failure).
  kRegisterQuery = 7,    ///< name:str, text:str (SQL), shards:u32 (0=default).
  kRegisterAck = 8,      ///< name:str, shards:u32, flag:u8 (partitioned),
                         ///< text:str (partition note), pattern:u8.

  // Data plane.
  kIngestBatch = 9,   ///< batch: count:u32, (stream_id:u32, tuple)*.
  kIngestAck = 10,    ///< id:i64 (tuples accepted).
  kAdvance = 11,      ///< time:i64 (engine clock advance, no arrival).
  kAdvanceAck = 12,   ///< (empty body).
  kFlush = 13,        ///< (empty body) -- engine-wide barrier.
  kFlushAck = 14,     ///< flag:u8 (barrier ok).
  kSnapshotReq = 15,  ///< name:str (query).
  kSnapshotResp = 16, ///< flag:u8 (ok), time:i64 (clock), tuples.

  // Subscriptions (see SubscriptionEvent in src/engine/subscription.h
  // for the pattern-aware semantics the pushes implement).
  kSubscribe = 17,      ///< name:str (query).
  kSubscribeAck = 18,   ///< flag:u8 (ok), sub_id:u64, pattern:u8,
                        ///< view_kind:u8, time:i64 (snapshot clock),
                        ///< tuples (starting snapshot).
  kUnsubscribe = 19,    ///< name:str (query), sub_id:u64.
  kUnsubscribeAck = 20, ///< flag:u8 (ok).
  kSubData = 21,        ///< push: sub_id:u64, seq:u64, tuples (deltas,
                        ///< in order).
  kSubWatermark = 22,   ///< push: sub_id:u64, seq:u64, time:i64.
  kSubReset = 23,       ///< push: sub_id:u64, seq:u64, tuples (fresh
                        ///< snapshot; supersedes all earlier seqs).
  kSubDropped = 24,     ///< push: sub_id:u64 -- the server detached the
                        ///< subscription (slow-consumer policy, SQL
                        ///< UNSUBSCRIBE, or its query was unregistered).

  // Liveness.
  kPing = 25,  ///< (empty body).
  kPong = 26,  ///< (empty body).

  // Text-SQL session layer (protocol version >= 2; see
  // src/sql/session/). One statement per request; SUBSCRIBE statements
  // answer with the full subscription payload (the kSubscribeAck
  // fields), after which the usual pushes flow for that sub_id.
  kSqlExec = 27,    ///< text:str (one session statement).
  kSqlResult = 28,  ///< flag:u8 (ok), text:str (result or error),
                    ///< name:str (on error: caret context; on a
                    ///< successful SUBSCRIBE: the query name),
                    ///< id:i64 (error byte offset, -1 if none),
                    ///< sub_id:u64, pattern:u8, view_kind:u8,
                    ///< time:i64, tuples (all five meaningful only for
                    ///< a successful SUBSCRIBE: the snapshot payload;
                    ///< sub_id is 0 otherwise).

  // Resumable sessions (protocol version >= 3; DESIGN.md Section 17).
  // kResume must be the first request after kHelloAck on the new
  // connection; it adopts the identified detached session wholesale.
  kResume = 29,     ///< token:u64 (from the previous kHelloAck),
                    ///< acks: count:u32, (sub_id:u64, last_seq:u64)*
                    ///< -- the highest seq applied per subscription
                    ///< (0 = nothing received yet).
  kResumeAck = 30,  ///< flag:u8 (resumed), text:str (reason when not),
                    ///< acks: count:u32, (sub_id:u64, disposition:u64)*
                    ///< where disposition 0 = replayed from the ring,
                    ///< 1 = reset to a fresh snapshot (ring overrun or
                    ///< shard restart), 2 = dropped (query gone).
};

/// Disposition codes in kResumeAck's per-subscription ack list.
inline constexpr uint64_t kResumeReplayed = 0;
inline constexpr uint64_t kResumeSnapshot = 1;
inline constexpr uint64_t kResumeDropped = 2;

/// One decoded protocol message: the type plus the union of every body
/// field, flat (the WalRecord idiom -- only the fields the type's grammar
/// lists are meaningful).
struct Message {
  MsgType type = MsgType::kError;
  uint64_t req_id = 0;

  uint32_t version = 0;   ///< kHello / kHelloAck.
  std::string name;       ///< Source / query / peer name.
  std::string text;       ///< SQL, error message, partition note.
  Schema schema;          ///< Declarations.
  bool flag = false;      ///< retroactive / ok / partitioned.
  int64_t id = -1;        ///< Stream id / accepted count.
  uint32_t shards = 0;    ///< kRegisterQuery / kRegisterAck.
  uint8_t pattern = 0;    ///< UpdatePattern of the registered plan.
  uint8_t view_kind = 0;  ///< ViewDeltaKind for materializing deltas.
  uint64_t sub_id = 0;    ///< Subscription handle.
  int64_t time = 0;       ///< Clock advance / watermark.
  uint64_t token = 0;     ///< Session token (kHelloAck / kResume).
  uint64_t seq = 0;       ///< Per-subscription frame sequence (pushes).
  std::vector<std::pair<uint64_t, uint64_t>> acks;  ///< kResume:
                          ///< (sub_id, last_seq); kResumeAck:
                          ///< (sub_id, disposition).
  std::vector<std::pair<uint32_t, Tuple>> batch;  ///< kIngestBatch.
  std::vector<Tuple> tuples;  ///< Snapshots, deltas, resets.
};

/// Encodes `m` as one complete frame (header + CRC + payload).
std::string EncodeFrame(const Message& m);

/// Incremental decode outcome. kNeedMore: the buffer holds only a frame
/// prefix -- read more bytes and retry. kCorrupt / kTooLarge are
/// unrecoverable for the connection: framing is byte-positional, so a
/// bad magic, CRC mismatch, malformed body, or oversized length means
/// the stream can never be resynchronized and must be closed (mirroring
/// the WAL's treatment of a corrupt record as the end of the readable
/// prefix).
enum class DecodeStatus { kOk, kNeedMore, kCorrupt, kTooLarge };

/// Decodes the first complete frame of `data`. On kOk fills `out` and
/// sets `consumed` to the frame's total byte count (the caller erases
/// that prefix and calls again -- a buffer may hold several frames). On
/// any other status `out` and `consumed` are unspecified.
DecodeStatus DecodeFrame(const void* data, size_t size, Message* out,
                         size_t* consumed);

/// Body-level codec, exposed for tests: EncodePayload is everything
/// after the frame header; DecodePayload requires the exact payload
/// (returns false on truncation, trailing bytes, unknown type, or
/// malformed body).
std::string EncodePayload(const Message& m);
bool DecodePayload(const void* data, size_t size, Message* out);

const char* MsgTypeName(MsgType t);

}  // namespace net
}  // namespace upa

#endif  // UPA_NET_PROTOCOL_H_
