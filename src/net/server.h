#ifndef UPA_NET_SERVER_H_
#define UPA_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/session.h"
#include "sql/session/session.h"

namespace upa {
namespace net {

struct ServerOptions {
  /// Address to bind (loopback by default; the protocol has no
  /// authentication, so binding a public interface is the operator's
  /// explicit choice).
  std::string bind = "127.0.0.1";
  /// Binary-protocol port. 0 = ephemeral (read the bound port back via
  /// port()); -1 = binary protocol disabled.
  int port = 0;
  /// HTTP /metrics port (same hardening as HandleMetricsRequest's
  /// tests: 400/405/404 on garbage). 0 = ephemeral; -1 = disabled.
  int metrics_port = -1;
  /// Renderer for the /metrics body. Defaults to the engine's
  /// Prometheus exposition plus the global obs registry.
  std::function<std::string()> metrics_render;
  /// Accepted connections beyond this are closed immediately.
  int max_sessions = 64;
  /// Per-session cap on queued-but-unsent subscription delta bytes;
  /// crossing it triggers the slow-consumer policy. Control frames are
  /// exempt (see SlowConsumerPolicy).
  size_t send_cap_bytes = 4u << 20;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;
  /// Name reported in kHelloAck.
  std::string server_name = "upa-engine";
  /// Accept kSqlExec (the text-SQL session layer, protocol version 2).
  /// Off by default: text DDL can declare sources and drop queries, so
  /// the operator opts in (engine_server --sql).
  bool enable_sql = false;
  /// How long a disconnected session with live subscriptions stays
  /// resumable (DESIGN.md Section 17). 0 disables resumption (a
  /// disconnect tears the session down immediately, the pre-v3
  /// behavior); -1 = auto: read UPA_SESSION_LEASE_MS, default 0.
  int session_lease_ms = -1;
  /// Per-session byte budget for the replay rings that back resume
  /// (summed encoded frames across the session's subscriptions). When
  /// the budget is exceeded the oldest frames are evicted and a resume
  /// that needs them falls back to a fresh snapshot.
  size_t replay_ring_bytes = 1u << 20;
  /// Heartbeat interval: after this many ms without inbound traffic the
  /// server pings the session. 0 disables heartbeats.
  int heartbeat_ms = 0;
  /// A session silent for this long is reaped (detached if resumable,
  /// closed otherwise). 0 = 4x heartbeat_ms.
  int heartbeat_timeout_ms = 0;
};

/// Aggregated server counters (also exported to the global obs registry
/// as upa_net_* series, which the /metrics endpoint serves).
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_active = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0;
  uint64_t slow_drops = 0;
  uint64_t subscriptions = 0;  ///< Currently attached via this server.
  uint64_t detached_sessions = 0;  ///< Disconnected, lease still live.
  uint64_t resumes = 0;            ///< Successful kResume adoptions.
  uint64_t resume_replays = 0;     ///< Subs caught up from the ring.
  uint64_t resume_snapshots = 0;   ///< Subs reset to a fresh snapshot.
  uint64_t resume_rejects = 0;     ///< kResume with a dead/unknown token.
  uint64_t leases_expired = 0;     ///< Detached sessions reaped.
  uint64_t heartbeat_timeouts = 0; ///< Sessions reaped for silence.
  uint64_t replay_ring_bytes = 0;  ///< Currently retained for replay.
  uint64_t replay_ring_overruns = 0;  ///< Frames evicted from rings.
};

/// The engine's network front end: a poll-based multi-client server
/// speaking the src/net binary protocol (and, optionally, a plain HTTP
/// /metrics endpoint, so there is exactly one socket implementation in
/// the tree). Two threads: a poll thread owns accepts, reads and request
/// dispatch; a writer thread drains session output buffers, so a
/// request that blocks on an engine barrier can never deadlock against
/// the subscription bytes that same barrier publishes.
///
/// Engine calls run synchronously on the poll thread, which gives each
/// session's requests the engine's documented single-caller semantics
/// (responses are sent in request order; subscription pushes interleave
/// but never overtake the data they were emitted after).
class Server {
 public:
  Server(Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts the poll + writer threads. Returns false (with
  /// `error`) if a socket could not be bound.
  bool Start(std::string* error = nullptr);

  /// Drains and closes every session, unsubscribes them from the
  /// engine, and joins the threads. Idempotent; also run by ~Server.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound ports (after Start). -1 when the listener is disabled.
  int port() const { return port_; }
  int metrics_port() const { return metrics_port_; }

  ServerStats Stats() const;

 private:
  void PollLoop();
  void WriterLoop();

  int OpenListener(int port, std::string* error, int* bound_port);
  void AcceptPending(int listen_fd, Session::Kind kind);
  /// Reads available bytes; returns false when the session must close.
  bool ReadSession(const std::shared_ptr<Session>& s);
  bool HandleBinaryInput(const std::shared_ptr<Session>& s);
  bool HandleHttpInput(const std::shared_ptr<Session>& s);
  /// Dispatches one decoded request; returns false on protocol errors
  /// that must close the session.
  bool HandleRequest(const std::shared_ptr<Session>& s, Message&& m);
  void HandleSubscribe(const std::shared_ptr<Session>& s, const Message& m);
  /// Executes one text-SQL statement (kSqlExec) through sql_ and performs
  /// the transport side of its action: SUBSCRIBE attaches through the
  /// same channel machinery as kSubscribe (the kSqlResult carries the
  /// snapshot payload), UNSUBSCRIBE detaches this session's subs on the
  /// query, UNREGISTER sweeps every session's subs on the dropped query
  /// with kSubDropped pushes (poll thread owns all sessions, so the
  /// sweep is race-free).
  void HandleSqlExec(const std::shared_ptr<Session>& s, const Message& m);
  /// Adopts the detached (or zombie live) session identified by the
  /// resume token into `s`: replays each subscription's ring suffix or
  /// resets it to a fresh snapshot, per the client's acked sequences.
  void HandleResume(const std::shared_ptr<Session>& s, const Message& m);
  /// Pushes kSubDropped for (and forgets) every session's subscriptions
  /// on `query` -- including detached sessions' (their resume then
  /// reports the sub as dropped). Engine-side teardown already happened
  /// (UnregisterQuery joined the shards), so only the session
  /// bookkeeping remains.
  void SweepQuerySubs(const std::string& query);
  /// Engine-side unsubscribe + session detach for ids the slow-consumer
  /// policy dropped.
  void ReapDropped(const std::shared_ptr<Session>& s);
  /// Unsubscribes, closes and rolls counters (does not touch the maps).
  void TearDownSession(const std::shared_ptr<Session>& s);
  void CloseSession(const std::shared_ptr<Session>& s);
  /// Socket loss: detaches the session under the resume lease when it
  /// is resumable (binary, handshaken, has subscriptions, lease on),
  /// closes it otherwise.
  void DisconnectSession(const std::shared_ptr<Session>& s);
  /// Lease expiry + heartbeat housekeeping (poll thread, each round).
  void RunTimers();
  uint64_t NextToken();
  void WakePoll();
  void WakeWriter();
  /// Publishes Stats() deltas to the global obs registry (upa_net_*).
  void ExportMetrics();

  Engine* const engine_;
  const ServerOptions options_;
  /// Statement executor behind kSqlExec (stateless; poll thread only).
  sqlsession::SqlSession sql_;

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  int port_ = -1;
  int metrics_port_ = -1;
  int poll_pipe_[2] = {-1, -1};    ///< Wakes the poll thread.
  int writer_pipe_[2] = {-1, -1};  ///< Wakes the writer thread.

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Set by the poll thread on exit; the writer drains remaining output
  /// and only then terminates, so Stop() can join both in order.
  std::atomic<bool> poll_exited_{false};
  std::thread poll_thread_;
  std::thread writer_thread_;

  /// Default /metrics renderer (engine + global registry); built on the
  /// poll thread at startup.
  std::function<std::string()> metrics_render_;

  /// Sessions keyed by id. The poll thread mutates the map; the writer
  /// thread snapshots it under the lock each round.
  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  /// Disconnected-but-resumable sessions keyed by token, with their
  /// lease deadlines. Mutated by the poll thread; Stats() reads it
  /// under sessions_mu_.
  struct Detached {
    std::shared_ptr<Session> session;
    int64_t deadline_ms = 0;
  };
  std::map<uint64_t, Detached> detached_;
  uint64_t next_session_id_ = 1;
  /// splitmix64 state behind NextToken (poll thread only).
  uint64_t token_seed_ = 0;
  /// Resolved ServerOptions::session_lease_ms (env applied).
  int lease_ms_ = 0;

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> resume_replays_{0};
  std::atomic<uint64_t> resume_snapshots_{0};
  std::atomic<uint64_t> resume_rejects_{0};
  std::atomic<uint64_t> leases_expired_{0};
  std::atomic<uint64_t> heartbeat_timeouts_{0};

  /// Totals rolled over from reaped sessions, so Stats() counters are
  /// monotonic across disconnects.
  std::atomic<uint64_t> closed_frames_in_{0};
  std::atomic<uint64_t> closed_frames_out_{0};
  std::atomic<uint64_t> closed_bytes_in_{0};
  std::atomic<uint64_t> closed_bytes_out_{0};
  std::atomic<uint64_t> closed_slow_drops_{0};
  std::atomic<uint64_t> closed_ring_overruns_{0};

  /// Last stats snapshot pushed to the obs registry (poll thread only).
  ServerStats exported_;
};

}  // namespace net
}  // namespace upa

#endif  // UPA_NET_SERVER_H_
