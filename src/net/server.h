#ifndef UPA_NET_SERVER_H_
#define UPA_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/session.h"
#include "sql/session/session.h"

namespace upa {
namespace net {

struct ServerOptions {
  /// Address to bind (loopback by default; the protocol has no
  /// authentication, so binding a public interface is the operator's
  /// explicit choice).
  std::string bind = "127.0.0.1";
  /// Binary-protocol port. 0 = ephemeral (read the bound port back via
  /// port()); -1 = binary protocol disabled.
  int port = 0;
  /// HTTP /metrics port (same hardening as HandleMetricsRequest's
  /// tests: 400/405/404 on garbage). 0 = ephemeral; -1 = disabled.
  int metrics_port = -1;
  /// Renderer for the /metrics body. Defaults to the engine's
  /// Prometheus exposition plus the global obs registry.
  std::function<std::string()> metrics_render;
  /// Accepted connections beyond this are closed immediately.
  int max_sessions = 64;
  /// Per-session cap on queued-but-unsent subscription delta bytes;
  /// crossing it triggers the slow-consumer policy. Control frames are
  /// exempt (see SlowConsumerPolicy).
  size_t send_cap_bytes = 4u << 20;
  SlowConsumerPolicy slow_consumer = SlowConsumerPolicy::kBlock;
  /// Name reported in kHelloAck.
  std::string server_name = "upa-engine";
  /// Accept kSqlExec (the text-SQL session layer, protocol version 2).
  /// Off by default: text DDL can declare sources and drop queries, so
  /// the operator opts in (engine_server --sql).
  bool enable_sql = false;
};

/// Aggregated server counters (also exported to the global obs registry
/// as upa_net_* series, which the /metrics endpoint serves).
struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_active = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t protocol_errors = 0;
  uint64_t slow_drops = 0;
  uint64_t subscriptions = 0;  ///< Currently attached via this server.
};

/// The engine's network front end: a poll-based multi-client server
/// speaking the src/net binary protocol (and, optionally, a plain HTTP
/// /metrics endpoint, so there is exactly one socket implementation in
/// the tree). Two threads: a poll thread owns accepts, reads and request
/// dispatch; a writer thread drains session output buffers, so a
/// request that blocks on an engine barrier can never deadlock against
/// the subscription bytes that same barrier publishes.
///
/// Engine calls run synchronously on the poll thread, which gives each
/// session's requests the engine's documented single-caller semantics
/// (responses are sent in request order; subscription pushes interleave
/// but never overtake the data they were emitted after).
class Server {
 public:
  Server(Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts the poll + writer threads. Returns false (with
  /// `error`) if a socket could not be bound.
  bool Start(std::string* error = nullptr);

  /// Drains and closes every session, unsubscribes them from the
  /// engine, and joins the threads. Idempotent; also run by ~Server.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound ports (after Start). -1 when the listener is disabled.
  int port() const { return port_; }
  int metrics_port() const { return metrics_port_; }

  ServerStats Stats() const;

 private:
  void PollLoop();
  void WriterLoop();

  int OpenListener(int port, std::string* error, int* bound_port);
  void AcceptPending(int listen_fd, Session::Kind kind);
  /// Reads available bytes; returns false when the session must close.
  bool ReadSession(const std::shared_ptr<Session>& s);
  bool HandleBinaryInput(const std::shared_ptr<Session>& s);
  bool HandleHttpInput(const std::shared_ptr<Session>& s);
  /// Dispatches one decoded request; returns false on protocol errors
  /// that must close the session.
  bool HandleRequest(const std::shared_ptr<Session>& s, Message&& m);
  void HandleSubscribe(const std::shared_ptr<Session>& s, const Message& m);
  /// Executes one text-SQL statement (kSqlExec) through sql_ and performs
  /// the transport side of its action: SUBSCRIBE attaches through the
  /// same channel machinery as kSubscribe (the kSqlResult carries the
  /// snapshot payload), UNSUBSCRIBE detaches this session's subs on the
  /// query, UNREGISTER sweeps every session's subs on the dropped query
  /// with kSubDropped pushes (poll thread owns all sessions, so the
  /// sweep is race-free).
  void HandleSqlExec(const std::shared_ptr<Session>& s, const Message& m);
  /// Pushes kSubDropped for (and forgets) every session's subscriptions
  /// on `query`. Engine-side teardown already happened (UnregisterQuery
  /// joined the shards), so only the session bookkeeping remains.
  void SweepQuerySubs(const std::string& query);
  /// Engine-side unsubscribe + session detach for ids the slow-consumer
  /// policy dropped.
  void ReapDropped(const std::shared_ptr<Session>& s);
  void CloseSession(const std::shared_ptr<Session>& s);
  void WakePoll();
  void WakeWriter();
  /// Publishes Stats() deltas to the global obs registry (upa_net_*).
  void ExportMetrics();

  Engine* const engine_;
  const ServerOptions options_;
  /// Statement executor behind kSqlExec (stateless; poll thread only).
  sqlsession::SqlSession sql_;

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  int port_ = -1;
  int metrics_port_ = -1;
  int poll_pipe_[2] = {-1, -1};    ///< Wakes the poll thread.
  int writer_pipe_[2] = {-1, -1};  ///< Wakes the writer thread.

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Set by the poll thread on exit; the writer drains remaining output
  /// and only then terminates, so Stop() can join both in order.
  std::atomic<bool> poll_exited_{false};
  std::thread poll_thread_;
  std::thread writer_thread_;

  /// Default /metrics renderer (engine + global registry); built on the
  /// poll thread at startup.
  std::function<std::string()> metrics_render_;

  /// Sessions keyed by id. The poll thread mutates the map; the writer
  /// thread snapshots it under the lock each round.
  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> protocol_errors_{0};

  /// Totals rolled over from reaped sessions, so Stats() counters are
  /// monotonic across disconnects.
  std::atomic<uint64_t> closed_frames_in_{0};
  std::atomic<uint64_t> closed_frames_out_{0};
  std::atomic<uint64_t> closed_bytes_in_{0};
  std::atomic<uint64_t> closed_bytes_out_{0};
  std::atomic<uint64_t> closed_slow_drops_{0};

  /// Last stats snapshot pushed to the obs registry (poll thread only).
  ServerStats exported_;
};

}  // namespace net
}  // namespace upa

#endif  // UPA_NET_SERVER_H_
