#include "net/client.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <thread>

namespace upa {
namespace net {
namespace {

void SetError(std::string* error, std::string text) {
  if (error != nullptr) *error = std::move(text);
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

// --- SubscriptionMirror ---

SubscriptionMirror::SubscriptionMirror(uint64_t sub_id, std::string query,
                                       UpdatePattern pattern,
                                       ViewDeltaKind view_kind)
    : sub_id_(sub_id),
      query_(std::move(query)),
      pattern_(pattern),
      view_kind_(view_kind) {}

void SubscriptionMirror::ApplySnapshot(const std::vector<Tuple>& rows,
                                       Time at) {
  rows_.clear();
  groups_.clear();
  if (view_kind_ == ViewDeltaKind::kGroupReplace) {
    // Snapshot rows render as (group, agg), mirroring
    // GroupArrayView::Snapshot.
    for (const Tuple& t : rows) {
      if (t.fields.size() == 2) groups_[t.fields[0]] = AsDouble(t.fields[1]);
    }
  } else {
    rows_ = rows;
  }
  watermark_ = std::max(watermark_, at);
}

void SubscriptionMirror::ApplyDelta(const Tuple& t) {
  if (dropped_) return;
  ++deltas_applied_;
  if (view_kind_ == ViewDeltaKind::kGroupReplace) {
    // (group, agg, count) replace record -- GroupArrayView::Apply.
    if (t.fields.size() != 3) return;
    if (AsInt(t.fields[2]) == 0) {
      groups_.erase(t.fields[0]);
    } else {
      groups_[t.fields[0]] = AsDouble(t.fields[1]);
    }
    return;
  }
  if (t.negative) {
    ++negatives_applied_;
    // One-match delete on (fields, exp) -- StateBuffer::EraseOneMatch.
    for (auto it = rows_.begin(); it != rows_.end(); ++it) {
      if (it->exp == t.exp && it->FieldsEqual(t)) {
        rows_.erase(it);
        return;
      }
    }
    return;
  }
  rows_.push_back(t);
}

void SubscriptionMirror::ApplyWatermark(Time t) {
  if (dropped_) return;
  watermark_ = std::max(watermark_, t);
  if (view_kind_ == ViewDeltaKind::kGroupReplace) return;
  // Time-based maintenance at the barrier: a row is live while now < exp
  // (Tuple::LiveAt), so everything with exp <= watermark leaves the view.
  // This applies to STR too -- window expiry is exp-implied even there;
  // negative deltas encode only the retroactive deletions.
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [t](const Tuple& r) { return !r.LiveAt(t); }),
              rows_.end());
}

bool SubscriptionMirror::AcceptSeq(uint64_t seq) {
  if (seq == 0) return true;  // Pre-v3 frame: no dedup possible.
  if (seq <= last_seq_) return false;
  last_seq_ = seq;
  return true;
}

std::vector<Tuple> SubscriptionMirror::Rows() const {
  if (view_kind_ != ViewDeltaKind::kGroupReplace) return rows_;
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& [group, agg] : groups_) {
    Tuple t;
    t.fields = {group, Value{agg}};
    out.push_back(std::move(t));
  }
  return out;
}

// --- Client ---

Client::~Client() { Close(); }

void Client::Close() {
  DropSocket();
  subs_.clear();
  token_ = 0;
  resume_candidates_.clear();
}

void Client::Disconnect() { DropSocket(); }

void Client::DropSocket() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  inbuf_.clear();
}

bool Client::Connect(const std::string& host, int port, std::string* error,
                     const std::string& client_name) {
  Close();
  host_ = host;
  port_ = port;
  client_name_ = client_name;
  jitter_state_ = reconnect_.jitter_seed;
  if (!ConnectSocket(error)) return false;
  if (!Handshake(error)) {
    Close();
    return false;
  }
  return true;
}

bool Client::ConnectSocket(std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, "socket: " + std::string(strerror(errno)));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    // Not a literal address: resolve (numeric service keeps this cheap).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host_.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      SetError(error, "cannot resolve host '" + host_ + "'");
      ::close(fd);
      return false;
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    SetError(error, "connect " + host_ + ":" + std::to_string(port_) + ": " +
                        strerror(errno));
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  inbuf_.clear();
  return true;
}

bool Client::Handshake(std::string* error) {
  Message hello;
  hello.type = MsgType::kHello;
  hello.version = kProtocolVersion;
  hello.name = client_name_;
  hello.req_id = next_req_id_++;
  if (!SendAll(EncodeFrame(hello), error)) return false;
  for (;;) {
    Message m;
    if (ReadFrame(&m, -1, error) <= 0) return false;
    if (m.req_id == 0) {
      DispatchPush(m);
      continue;
    }
    if (m.req_id != hello.req_id) {
      SetError(error, "response for unexpected request id");
      return false;
    }
    if (m.type == MsgType::kError) {
      SetError(error, m.text);
      return false;
    }
    if (m.type != MsgType::kHelloAck || m.version != kProtocolVersion) {
      SetError(error, "handshake failed");
      return false;
    }
    server_name_ = m.name;
    token_ = m.token;
    return true;
  }
}

bool Client::SendAll(const std::string& bytes, std::string* error) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    SetError(error, "send: " + std::string(strerror(errno)));
    return false;
  }
  return true;
}

int Client::ReadFrame(Message* out, int timeout_ms, std::string* error) {
  // The timeout is a whole-frame deadline: partial reads, pushes and
  // EINTR wake-ups shrink the residual wait instead of restarting it, so
  // a server trickling bytes cannot stretch a 50ms timeout indefinitely.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms >= 0 ? timeout_ms
                                                                  : 0);
  for (;;) {
    size_t consumed = 0;
    const DecodeStatus st =
        DecodeFrame(inbuf_.data(), inbuf_.size(), out, &consumed);
    if (st == DecodeStatus::kOk) {
      inbuf_.erase(0, consumed);
      return 1;
    }
    if (st != DecodeStatus::kNeedMore) {
      SetError(error, "corrupt frame from server");
      return -1;
    }
    int wait = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0 && timeout_ms != 0) return 0;
      wait = left > 0 ? static_cast<int>(left) : 0;
    }
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, wait);
    if (pr == 0) return 0;
    if (pr < 0) {
      if (errno == EINTR) continue;
      SetError(error, "poll: " + std::string(strerror(errno)));
      return -1;
    }
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    SetError(error, n == 0 ? "server closed the connection"
                           : "read: " + std::string(strerror(errno)));
    return -1;
  }
}

void Client::DispatchPush(const Message& m) {
  if (m.type == MsgType::kPing) {
    // Server heartbeat (req_id 0): answer in-line so liveness holds even
    // while this thread is blocked inside a long Call.
    Message pong;
    pong.type = MsgType::kPong;
    std::string ignored;
    SendAll(EncodeFrame(pong), &ignored);
    return;
  }
  auto it = subs_.find(m.sub_id);
  if (it == subs_.end()) return;  // Already unsubscribed; stale push.
  SubscriptionMirror* sub = it->second.get();
  switch (m.type) {
    case MsgType::kSubData:
      if (!sub->AcceptSeq(m.seq)) {
        ++stats_.frames_deduped;
        break;
      }
      for (const Tuple& t : m.tuples) sub->ApplyDelta(t);
      break;
    case MsgType::kSubWatermark:
      if (!sub->AcceptSeq(m.seq)) {
        ++stats_.frames_deduped;
        break;
      }
      sub->ApplyWatermark(m.time);
      break;
    case MsgType::kSubReset:
      if (!sub->AcceptSeq(m.seq)) {
        ++stats_.frames_deduped;
        break;
      }
      // Post-recovery resynchronization: the snapshot supersedes
      // everything applied so far.
      ++sub->resets_applied_;
      sub->ApplySnapshot(m.tuples, sub->watermark_);
      break;
    case MsgType::kSubDropped:
      sub->dropped_ = true;
      break;
    default:
      break;
  }
}

bool Client::Call(Message* req, Message* resp, std::string* error) {
  // Bounded resend cycles: each transport loss costs one full Reconnect
  // (itself backoff-bounded), so this caps pathological connect-then-die
  // loops, not ordinary retries.
  const bool may_retry = reconnect_.enabled && !in_reconnect_;
  req->req_id = next_req_id_++;
  for (int cycle = 0; cycle < 5; ++cycle) {
    if (fd_ < 0) {
      if (!may_retry || host_.empty()) {
        SetError(error, "not connected");
        return false;
      }
      if (!Reconnect(error)) return false;
    }
    if (cycle > 0 &&
        (req->type == MsgType::kSubscribe || req->type == MsgType::kSqlExec)) {
      // The resume's orphan sweep tore down whatever a lost kSubscribe /
      // kSqlExec created, and replaying the cached ack would hand back a
      // dead sub_id -- force re-execution under a fresh id. Idempotent
      // requests keep their req_id so the server's one-deep response
      // cache absorbs a duplicate execution.
      req->req_id = next_req_id_++;
    }
    bool transport_lost = false;
    if (!SendAll(EncodeFrame(*req), error)) {
      transport_lost = true;
    } else {
      for (;;) {
        Message m;
        const int r = ReadFrame(&m, -1, error);
        if (r <= 0) {
          transport_lost = true;
          break;
        }
        if (m.req_id == 0) {
          DispatchPush(m);
          continue;
        }
        if (m.req_id != req->req_id) {
          SetError(error, "response for unexpected request id");
          return false;
        }
        if (m.type == MsgType::kError) {
          SetError(error, m.text);
          return false;
        }
        *resp = std::move(m);
        return true;
      }
    }
    if (!transport_lost) return false;
    DropSocket();
    if (!may_retry) return false;
  }
  SetError(error, "connection kept failing across reconnects");
  return false;
}

bool Client::Reconnect(std::string* error) {
  if (in_reconnect_) return false;
  in_reconnect_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{in_reconnect_};

  int backoff = reconnect_.backoff_base_ms;
  for (int attempt = 1;; ++attempt) {
    DropSocket();
    // The dying session's token may still own our subscriptions under
    // the server's lease. Keep every such token and try the newest
    // first: a connection that died *mid-resume* may already have been
    // adopted into server-side, making its token the live owner, while
    // the older token covers the case where the resume never arrived.
    if (token_ != 0 && !subs_.empty()) {
      auto& c = resume_candidates_;
      if (std::find(c.begin(), c.end(), token_) == c.end()) {
        c.insert(c.begin(), token_);
        if (c.size() > 4) c.resize(4);
      }
    }
    token_ = 0;

    std::string err;
    if (ConnectSocket(&err) && Handshake(&err)) {
      ++stats_.reconnects;
      if (resume_candidates_.empty() || subs_.empty()) return true;
      bool transport_ok = true;
      for (uint64_t candidate : resume_candidates_) {
        bool accepted = false;
        if (!TryResume(candidate, &accepted, &err)) {
          // Transport died mid-resume; loop back, reconnect, and try
          // again (the fresh token just joined the candidate list).
          transport_ok = false;
          break;
        }
        if (accepted) {
          resume_candidates_.clear();
          return true;
        }
      }
      if (transport_ok) {
        // Every candidate was rejected: the lease expired (or the
        // server restarted). The connection itself is healthy; the
        // subscriptions are gone, which the mirrors report as dropped.
        for (auto& [sub_id, sub] : subs_) {
          if (!sub->dropped_) {
            sub->dropped_ = true;
            ++stats_.resume_lost;
          }
        }
        resume_candidates_.clear();
        return true;
      }
    }
    DropSocket();
    if (attempt >= reconnect_.max_attempts) {
      SetError(error, "reconnect failed after " + std::to_string(attempt) +
                          " attempts: " + err);
      return false;
    }
    // Capped exponential backoff with deterministic jitter (up to half
    // the step), so chaos runs at a fixed jitter_seed reproduce exactly.
    const int jitter = static_cast<int>(
        SplitMix64(&jitter_state_) % (static_cast<uint64_t>(backoff) / 2 + 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff + jitter));
    backoff = std::min(backoff * 2, reconnect_.backoff_max_ms);
  }
}

bool Client::TryResume(uint64_t token, bool* accepted, std::string* error) {
  *accepted = false;
  Message req;
  req.type = MsgType::kResume;
  req.token = token;
  req.req_id = next_req_id_++;
  for (const auto& [sub_id, sub] : subs_) {
    if (sub->dropped_) continue;
    req.acks.emplace_back(sub_id, sub->last_seq_);
  }
  if (req.acks.empty()) return true;  // Nothing to resume; not a failure.
  if (!SendAll(EncodeFrame(req), error)) return false;
  for (;;) {
    Message m;
    if (ReadFrame(&m, -1, error) <= 0) return false;
    if (m.req_id == 0) {
      // Replayed ring frames precede the ack; the mirrors dedup them.
      DispatchPush(m);
      continue;
    }
    if (m.req_id != req.req_id) {
      SetError(error, "response for unexpected request id");
      return false;
    }
    if (m.type == MsgType::kError || !m.flag) {
      return true;  // Rejected (stale token); caller tries the next one.
    }
    if (m.type != MsgType::kResumeAck) {
      SetError(error, "unexpected resume response");
      return false;
    }
    *accepted = true;
    ++stats_.resumes;
    for (const auto& [sub_id, disposition] : m.acks) {
      auto it = subs_.find(sub_id);
      if (it == subs_.end()) continue;
      if (disposition == kResumeReplayed) {
        ++stats_.resume_replays;
      } else if (disposition == kResumeSnapshot) {
        // The kSubReset carrying the fresh snapshot is already behind the
        // ack in the stream (or arrives with the next read).
        ++stats_.resume_snapshots;
      } else {
        it->second->dropped_ = true;
        ++stats_.resume_lost;
      }
    }
    return true;
  }
}

int64_t Client::DeclareStream(const std::string& name, const Schema& schema,
                              std::string* error) {
  Message req;
  req.type = MsgType::kDeclareStream;
  req.name = name;
  req.schema = schema;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kDeclareAck) {
    return -1;
  }
  return resp.id;
}

int64_t Client::DeclareRelation(const std::string& name, const Schema& schema,
                                bool retroactive, std::string* error) {
  Message req;
  req.type = MsgType::kDeclareRelation;
  req.name = name;
  req.schema = schema;
  req.flag = retroactive;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kDeclareAck) {
    return -1;
  }
  return resp.id;
}

bool Client::RegisterQuery(const std::string& name, const std::string& sql,
                           int shards, ClientQueryInfo* info,
                           std::string* error) {
  Message req;
  req.type = MsgType::kRegisterQuery;
  req.name = name;
  req.text = sql;
  req.shards = shards > 0 ? static_cast<uint32_t>(shards) : 0;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kRegisterAck) {
    return false;
  }
  if (info != nullptr) {
    info->name = resp.name;
    info->shards = static_cast<int>(resp.shards);
    info->partitioned = resp.flag;
    info->partition_note = resp.text;
    info->pattern = static_cast<UpdatePattern>(resp.pattern);
  }
  return true;
}

bool Client::IngestBatch(
    const std::vector<std::pair<uint32_t, Tuple>>& batch,
    std::string* error) {
  Message req;
  req.type = MsgType::kIngestBatch;
  req.batch = batch;
  Message resp;
  return Call(&req, &resp, error) && resp.type == MsgType::kIngestAck;
}

bool Client::Advance(Time now, std::string* error) {
  Message req;
  req.type = MsgType::kAdvance;
  req.time = now;
  Message resp;
  return Call(&req, &resp, error) && resp.type == MsgType::kAdvanceAck;
}

bool Client::Flush(std::string* error) {
  Message req;
  req.type = MsgType::kFlush;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kFlushAck) {
    return false;
  }
  if (!resp.flag) {
    SetError(error, "engine barrier failed");
    return false;
  }
  return true;
}

bool Client::Snapshot(const std::string& query, std::vector<Tuple>* out,
                      Time* at, std::string* error) {
  Message req;
  req.type = MsgType::kSnapshotReq;
  req.name = query;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kSnapshotResp) {
    return false;
  }
  if (!resp.flag) {
    SetError(error, "snapshot failed for query '" + query + "'");
    return false;
  }
  if (out != nullptr) *out = std::move(resp.tuples);
  if (at != nullptr) *at = resp.time;
  return true;
}

SubscriptionMirror* Client::Subscribe(const std::string& query,
                                      std::string* error) {
  Message req;
  req.type = MsgType::kSubscribe;
  req.name = query;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kSubscribeAck ||
      !resp.flag) {
    return nullptr;
  }
  auto mirror = std::unique_ptr<SubscriptionMirror>(new SubscriptionMirror(
      resp.sub_id, query, static_cast<UpdatePattern>(resp.pattern),
      static_cast<ViewDeltaKind>(resp.view_kind)));
  mirror->ApplySnapshot(resp.tuples, resp.time);
  SubscriptionMirror* raw = mirror.get();
  subs_[resp.sub_id] = std::move(mirror);
  return raw;
}

bool Client::Unsubscribe(SubscriptionMirror* sub, std::string* error) {
  if (sub == nullptr) return false;
  Message req;
  req.type = MsgType::kUnsubscribe;
  req.name = sub->query();
  req.sub_id = sub->sub_id();
  Message resp;
  const bool ok = Call(&req, &resp, error) &&
                  resp.type == MsgType::kUnsubscribeAck && resp.flag;
  subs_.erase(sub->sub_id());  // Invalidates `sub` either way.
  return ok;
}

bool Client::SqlExec(const std::string& statement, SqlExecResult* out,
                     std::string* error) {
  Message req;
  req.type = MsgType::kSqlExec;
  req.text = statement;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kSqlResult) {
    return false;
  }
  *out = SqlExecResult{};
  out->ok = resp.flag;
  if (!resp.flag) {
    out->error = std::move(resp.text);
    out->context = std::move(resp.name);
    out->error_offset = resp.id;
    return true;
  }
  out->text = std::move(resp.text);
  if (resp.sub_id != 0) {
    // Successful SUBSCRIBE: the result carries the snapshot payload and
    // the query name (resp.name).
    auto mirror = std::unique_ptr<SubscriptionMirror>(new SubscriptionMirror(
        resp.sub_id, resp.name, static_cast<UpdatePattern>(resp.pattern),
        static_cast<ViewDeltaKind>(resp.view_kind)));
    mirror->ApplySnapshot(resp.tuples, resp.time);
    out->mirror = mirror.get();
    subs_[resp.sub_id] = std::move(mirror);
  }
  return true;
}

bool Client::Ping(std::string* error) {
  Message req;
  req.type = MsgType::kPing;
  Message resp;
  return Call(&req, &resp, error) && resp.type == MsgType::kPong;
}

bool Client::PollEvents(int timeout_ms, std::string* error) {
  if (fd_ < 0) {
    if (!reconnect_.enabled || in_reconnect_ || host_.empty()) {
      SetError(error, "not connected");
      return false;
    }
    if (!Reconnect(error)) return false;
  }
  int wait = timeout_ms;
  for (;;) {
    Message m;
    const int r = ReadFrame(&m, wait, error);
    if (r < 0) {
      DropSocket();
      if (!reconnect_.enabled || in_reconnect_) return false;
      // Reconnect-with-resume; freshly replayed pushes surface on the
      // next poll.
      return Reconnect(error);
    }
    if (r == 0) return true;
    if (m.req_id == 0) {
      DispatchPush(m);
    } else {
      SetError(error, "unsolicited response frame");
      return false;
    }
    wait = 0;  // Drain whatever else is immediately available.
  }
}

}  // namespace net
}  // namespace upa
