#include "net/client.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>

namespace upa {
namespace net {
namespace {

void SetError(std::string* error, std::string text) {
  if (error != nullptr) *error = std::move(text);
}

}  // namespace

// --- SubscriptionMirror ---

SubscriptionMirror::SubscriptionMirror(uint64_t sub_id, std::string query,
                                       UpdatePattern pattern,
                                       ViewDeltaKind view_kind)
    : sub_id_(sub_id),
      query_(std::move(query)),
      pattern_(pattern),
      view_kind_(view_kind) {}

void SubscriptionMirror::ApplySnapshot(const std::vector<Tuple>& rows,
                                       Time at) {
  rows_.clear();
  groups_.clear();
  if (view_kind_ == ViewDeltaKind::kGroupReplace) {
    // Snapshot rows render as (group, agg), mirroring
    // GroupArrayView::Snapshot.
    for (const Tuple& t : rows) {
      if (t.fields.size() == 2) groups_[t.fields[0]] = AsDouble(t.fields[1]);
    }
  } else {
    rows_ = rows;
  }
  watermark_ = std::max(watermark_, at);
}

void SubscriptionMirror::ApplyDelta(const Tuple& t) {
  if (dropped_) return;
  ++deltas_applied_;
  if (view_kind_ == ViewDeltaKind::kGroupReplace) {
    // (group, agg, count) replace record -- GroupArrayView::Apply.
    if (t.fields.size() != 3) return;
    if (AsInt(t.fields[2]) == 0) {
      groups_.erase(t.fields[0]);
    } else {
      groups_[t.fields[0]] = AsDouble(t.fields[1]);
    }
    return;
  }
  if (t.negative) {
    ++negatives_applied_;
    // One-match delete on (fields, exp) -- StateBuffer::EraseOneMatch.
    for (auto it = rows_.begin(); it != rows_.end(); ++it) {
      if (it->exp == t.exp && it->FieldsEqual(t)) {
        rows_.erase(it);
        return;
      }
    }
    return;
  }
  rows_.push_back(t);
}

void SubscriptionMirror::ApplyWatermark(Time t) {
  if (dropped_) return;
  watermark_ = std::max(watermark_, t);
  if (view_kind_ == ViewDeltaKind::kGroupReplace) return;
  // Time-based maintenance at the barrier: a row is live while now < exp
  // (Tuple::LiveAt), so everything with exp <= watermark leaves the view.
  // This applies to STR too -- window expiry is exp-implied even there;
  // negative deltas encode only the retroactive deletions.
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [t](const Tuple& r) { return !r.LiveAt(t); }),
              rows_.end());
}

std::vector<Tuple> SubscriptionMirror::Rows() const {
  if (view_kind_ != ViewDeltaKind::kGroupReplace) return rows_;
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& [group, agg] : groups_) {
    Tuple t;
    t.fields = {group, Value{agg}};
    out.push_back(std::move(t));
  }
  return out;
}

// --- Client ---

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  inbuf_.clear();
  subs_.clear();
}

bool Client::Connect(const std::string& host, int port, std::string* error,
                     const std::string& client_name) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, "socket: " + std::string(strerror(errno)));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a literal address: resolve (numeric service keeps this cheap).
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      SetError(error, "cannot resolve host '" + host + "'");
      ::close(fd);
      return false;
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    SetError(error, "connect " + host + ":" + std::to_string(port) + ": " +
                        strerror(errno));
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;

  Message hello;
  hello.type = MsgType::kHello;
  hello.version = kProtocolVersion;
  hello.name = client_name;
  Message ack;
  if (!Call(&hello, &ack, error)) {
    Close();
    return false;
  }
  if (ack.type != MsgType::kHelloAck || ack.version != kProtocolVersion) {
    SetError(error, "handshake failed");
    Close();
    return false;
  }
  server_name_ = ack.name;
  return true;
}

bool Client::SendAll(const std::string& bytes, std::string* error) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    SetError(error, "send: " + std::string(strerror(errno)));
    return false;
  }
  return true;
}

int Client::ReadFrame(Message* out, int timeout_ms, std::string* error) {
  for (;;) {
    size_t consumed = 0;
    const DecodeStatus st =
        DecodeFrame(inbuf_.data(), inbuf_.size(), out, &consumed);
    if (st == DecodeStatus::kOk) {
      inbuf_.erase(0, consumed);
      return 1;
    }
    if (st != DecodeStatus::kNeedMore) {
      SetError(error, "corrupt frame from server");
      return -1;
    }
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, timeout_ms);
    if (pr == 0) return 0;
    if (pr < 0) {
      if (errno == EINTR) continue;
      SetError(error, "poll: " + std::string(strerror(errno)));
      return -1;
    }
    char buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    SetError(error, n == 0 ? "server closed the connection"
                           : "read: " + std::string(strerror(errno)));
    return -1;
  }
}

void Client::DispatchPush(const Message& m) {
  auto it = subs_.find(m.sub_id);
  if (it == subs_.end()) return;  // Already unsubscribed; stale push.
  SubscriptionMirror* sub = it->second.get();
  switch (m.type) {
    case MsgType::kSubData:
      for (const Tuple& t : m.tuples) sub->ApplyDelta(t);
      break;
    case MsgType::kSubWatermark:
      sub->ApplyWatermark(m.time);
      break;
    case MsgType::kSubReset:
      // Post-recovery resynchronization: the snapshot supersedes
      // everything applied so far.
      ++sub->resets_applied_;
      sub->ApplySnapshot(m.tuples, sub->watermark_);
      break;
    case MsgType::kSubDropped:
      sub->dropped_ = true;
      break;
    default:
      break;
  }
}

bool Client::Call(Message* req, Message* resp, std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }
  req->req_id = next_req_id_++;
  if (!SendAll(EncodeFrame(*req), error)) return false;
  for (;;) {
    Message m;
    const int r = ReadFrame(&m, -1, error);
    if (r <= 0) return false;
    if (m.req_id == 0) {
      DispatchPush(m);
      continue;
    }
    if (m.req_id != req->req_id) {
      SetError(error, "response for unexpected request id");
      return false;
    }
    if (m.type == MsgType::kError) {
      SetError(error, m.text);
      return false;
    }
    *resp = std::move(m);
    return true;
  }
}

int64_t Client::DeclareStream(const std::string& name, const Schema& schema,
                              std::string* error) {
  Message req;
  req.type = MsgType::kDeclareStream;
  req.name = name;
  req.schema = schema;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kDeclareAck) {
    return -1;
  }
  return resp.id;
}

int64_t Client::DeclareRelation(const std::string& name, const Schema& schema,
                                bool retroactive, std::string* error) {
  Message req;
  req.type = MsgType::kDeclareRelation;
  req.name = name;
  req.schema = schema;
  req.flag = retroactive;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kDeclareAck) {
    return -1;
  }
  return resp.id;
}

bool Client::RegisterQuery(const std::string& name, const std::string& sql,
                           int shards, ClientQueryInfo* info,
                           std::string* error) {
  Message req;
  req.type = MsgType::kRegisterQuery;
  req.name = name;
  req.text = sql;
  req.shards = shards > 0 ? static_cast<uint32_t>(shards) : 0;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kRegisterAck) {
    return false;
  }
  if (info != nullptr) {
    info->name = resp.name;
    info->shards = static_cast<int>(resp.shards);
    info->partitioned = resp.flag;
    info->partition_note = resp.text;
    info->pattern = static_cast<UpdatePattern>(resp.pattern);
  }
  return true;
}

bool Client::IngestBatch(
    const std::vector<std::pair<uint32_t, Tuple>>& batch,
    std::string* error) {
  Message req;
  req.type = MsgType::kIngestBatch;
  req.batch = batch;
  Message resp;
  return Call(&req, &resp, error) && resp.type == MsgType::kIngestAck;
}

bool Client::Advance(Time now, std::string* error) {
  Message req;
  req.type = MsgType::kAdvance;
  req.time = now;
  Message resp;
  return Call(&req, &resp, error) && resp.type == MsgType::kAdvanceAck;
}

bool Client::Flush(std::string* error) {
  Message req;
  req.type = MsgType::kFlush;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kFlushAck) {
    return false;
  }
  if (!resp.flag) {
    SetError(error, "engine barrier failed");
    return false;
  }
  return true;
}

bool Client::Snapshot(const std::string& query, std::vector<Tuple>* out,
                      Time* at, std::string* error) {
  Message req;
  req.type = MsgType::kSnapshotReq;
  req.name = query;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kSnapshotResp) {
    return false;
  }
  if (!resp.flag) {
    SetError(error, "snapshot failed for query '" + query + "'");
    return false;
  }
  if (out != nullptr) *out = std::move(resp.tuples);
  if (at != nullptr) *at = resp.time;
  return true;
}

SubscriptionMirror* Client::Subscribe(const std::string& query,
                                      std::string* error) {
  Message req;
  req.type = MsgType::kSubscribe;
  req.name = query;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kSubscribeAck ||
      !resp.flag) {
    return nullptr;
  }
  auto mirror = std::unique_ptr<SubscriptionMirror>(new SubscriptionMirror(
      resp.sub_id, query, static_cast<UpdatePattern>(resp.pattern),
      static_cast<ViewDeltaKind>(resp.view_kind)));
  mirror->ApplySnapshot(resp.tuples, resp.time);
  SubscriptionMirror* raw = mirror.get();
  subs_[resp.sub_id] = std::move(mirror);
  return raw;
}

bool Client::Unsubscribe(SubscriptionMirror* sub, std::string* error) {
  if (sub == nullptr) return false;
  Message req;
  req.type = MsgType::kUnsubscribe;
  req.name = sub->query();
  req.sub_id = sub->sub_id();
  Message resp;
  const bool ok = Call(&req, &resp, error) &&
                  resp.type == MsgType::kUnsubscribeAck && resp.flag;
  subs_.erase(sub->sub_id());  // Invalidates `sub` either way.
  return ok;
}

bool Client::SqlExec(const std::string& statement, SqlExecResult* out,
                     std::string* error) {
  Message req;
  req.type = MsgType::kSqlExec;
  req.text = statement;
  Message resp;
  if (!Call(&req, &resp, error) || resp.type != MsgType::kSqlResult) {
    return false;
  }
  *out = SqlExecResult{};
  out->ok = resp.flag;
  if (!resp.flag) {
    out->error = std::move(resp.text);
    out->context = std::move(resp.name);
    out->error_offset = resp.id;
    return true;
  }
  out->text = std::move(resp.text);
  if (resp.sub_id != 0) {
    // Successful SUBSCRIBE: the result carries the snapshot payload and
    // the query name (resp.name).
    auto mirror = std::unique_ptr<SubscriptionMirror>(new SubscriptionMirror(
        resp.sub_id, resp.name, static_cast<UpdatePattern>(resp.pattern),
        static_cast<ViewDeltaKind>(resp.view_kind)));
    mirror->ApplySnapshot(resp.tuples, resp.time);
    out->mirror = mirror.get();
    subs_[resp.sub_id] = std::move(mirror);
  }
  return true;
}

bool Client::Ping(std::string* error) {
  Message req;
  req.type = MsgType::kPing;
  Message resp;
  return Call(&req, &resp, error) && resp.type == MsgType::kPong;
}

bool Client::PollEvents(int timeout_ms, std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }
  int wait = timeout_ms;
  for (;;) {
    Message m;
    const int r = ReadFrame(&m, wait, error);
    if (r < 0) return false;
    if (r == 0) return true;
    if (m.req_id == 0) {
      DispatchPush(m);
    } else {
      SetError(error, "unsolicited response frame");
      return false;
    }
    wait = 0;  // Drain whatever else is immediately available.
  }
}

}  // namespace net
}  // namespace upa
