#include "net/protocol.h"

#include <cstring>

#include "common/crc32c.h"
#include "state/serde.h"

namespace upa {
namespace net {
namespace {

/// Largest tuple vector a decoder will reserve up front. Lengths are
/// additionally validated against the remaining payload bytes (each
/// tuple encoding is at least 18 bytes), so a corrupt count cannot
/// trigger a huge allocation.
constexpr size_t kMinTupleEncoding = 18;

void PutSchema(std::string* out, const Schema& s) {
  serde::PutU32(out, static_cast<uint32_t>(s.num_fields()));
  for (const Field& f : s.fields()) {
    serde::PutString(out, f.name);
    serde::PutU8(out, static_cast<uint8_t>(f.type));
  }
}

bool GetSchema(serde::Reader* r, Schema* out) {
  uint32_t n = 0;
  if (!r->GetU32(&n)) return false;
  // Each field takes at least a length prefix + type byte.
  if (n > r->remaining() / 5 + 1) return false;
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field f;
    uint8_t type = 0;
    if (!r->GetString(&f.name) || !r->GetU8(&type)) return false;
    if (type > static_cast<uint8_t>(ValueType::kString)) return false;
    f.type = static_cast<ValueType>(type);
    fields.push_back(std::move(f));
  }
  *out = Schema(std::move(fields));
  return true;
}

void PutTuples(std::string* out, const std::vector<Tuple>& tuples) {
  serde::PutU32(out, static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) serde::PutTuple(out, t);
}

bool GetTuples(serde::Reader* r, std::vector<Tuple>* out) {
  uint32_t n = 0;
  if (!r->GetU32(&n)) return false;
  if (n > r->remaining() / kMinTupleEncoding + 1) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Tuple t;
    if (!r->GetTuple(&t)) return false;
    out->push_back(std::move(t));
  }
  return true;
}

void PutAcks(std::string* out,
             const std::vector<std::pair<uint64_t, uint64_t>>& acks) {
  serde::PutU32(out, static_cast<uint32_t>(acks.size()));
  for (const auto& [sub_id, v] : acks) {
    serde::PutU64(out, sub_id);
    serde::PutU64(out, v);
  }
}

bool GetAcks(serde::Reader* r,
             std::vector<std::pair<uint64_t, uint64_t>>* out) {
  uint32_t n = 0;
  if (!r->GetU32(&n)) return false;
  // Each entry is exactly 16 bytes.
  if (n > r->remaining() / 16 + 1) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t sub_id = 0, v = 0;
    if (!r->GetU64(&sub_id) || !r->GetU64(&v)) return false;
    out->emplace_back(sub_id, v);
  }
  return true;
}

}  // namespace

std::string EncodePayload(const Message& m) {
  std::string out;
  serde::PutU8(&out, static_cast<uint8_t>(m.type));
  serde::PutU64(&out, m.req_id);
  switch (m.type) {
    case MsgType::kHello:
      serde::PutU32(&out, m.version);
      serde::PutString(&out, m.name);
      break;
    case MsgType::kHelloAck:
      serde::PutU32(&out, m.version);
      serde::PutString(&out, m.name);
      serde::PutU64(&out, m.token);
      break;
    case MsgType::kError:
      serde::PutString(&out, m.text);
      break;
    case MsgType::kDeclareStream:
      serde::PutString(&out, m.name);
      PutSchema(&out, m.schema);
      break;
    case MsgType::kDeclareRelation:
      serde::PutString(&out, m.name);
      PutSchema(&out, m.schema);
      serde::PutU8(&out, m.flag ? 1 : 0);
      break;
    case MsgType::kDeclareAck:
      serde::PutI64(&out, m.id);
      break;
    case MsgType::kRegisterQuery:
      serde::PutString(&out, m.name);
      serde::PutString(&out, m.text);
      serde::PutU32(&out, m.shards);
      break;
    case MsgType::kRegisterAck:
      serde::PutString(&out, m.name);
      serde::PutU32(&out, m.shards);
      serde::PutU8(&out, m.flag ? 1 : 0);
      serde::PutString(&out, m.text);
      serde::PutU8(&out, m.pattern);
      break;
    case MsgType::kIngestBatch:
      serde::PutU32(&out, static_cast<uint32_t>(m.batch.size()));
      for (const auto& [stream, tuple] : m.batch) {
        serde::PutU32(&out, stream);
        serde::PutTuple(&out, tuple);
      }
      break;
    case MsgType::kIngestAck:
      serde::PutI64(&out, m.id);
      break;
    case MsgType::kAdvance:
      serde::PutI64(&out, m.time);
      break;
    case MsgType::kFlushAck:
      serde::PutU8(&out, m.flag ? 1 : 0);
      break;
    case MsgType::kSnapshotReq:
      serde::PutString(&out, m.name);
      break;
    case MsgType::kSnapshotResp:
      serde::PutU8(&out, m.flag ? 1 : 0);
      serde::PutI64(&out, m.time);
      PutTuples(&out, m.tuples);
      break;
    case MsgType::kSubscribe:
      serde::PutString(&out, m.name);
      break;
    case MsgType::kSubscribeAck:
      serde::PutU8(&out, m.flag ? 1 : 0);
      serde::PutU64(&out, m.sub_id);
      serde::PutU8(&out, m.pattern);
      serde::PutU8(&out, m.view_kind);
      serde::PutI64(&out, m.time);
      PutTuples(&out, m.tuples);
      break;
    case MsgType::kUnsubscribe:
      serde::PutString(&out, m.name);
      serde::PutU64(&out, m.sub_id);
      break;
    case MsgType::kUnsubscribeAck:
      serde::PutU8(&out, m.flag ? 1 : 0);
      break;
    case MsgType::kSubData:
    case MsgType::kSubReset:
      serde::PutU64(&out, m.sub_id);
      serde::PutU64(&out, m.seq);
      PutTuples(&out, m.tuples);
      break;
    case MsgType::kSubWatermark:
      serde::PutU64(&out, m.sub_id);
      serde::PutU64(&out, m.seq);
      serde::PutI64(&out, m.time);
      break;
    case MsgType::kSubDropped:
      serde::PutU64(&out, m.sub_id);
      break;
    case MsgType::kSqlExec:
      serde::PutString(&out, m.text);
      break;
    case MsgType::kSqlResult:
      serde::PutU8(&out, m.flag ? 1 : 0);
      serde::PutString(&out, m.text);
      serde::PutString(&out, m.name);
      serde::PutI64(&out, m.id);
      serde::PutU64(&out, m.sub_id);
      serde::PutU8(&out, m.pattern);
      serde::PutU8(&out, m.view_kind);
      serde::PutI64(&out, m.time);
      PutTuples(&out, m.tuples);
      break;
    case MsgType::kResume:
      serde::PutU64(&out, m.token);
      PutAcks(&out, m.acks);
      break;
    case MsgType::kResumeAck:
      serde::PutU8(&out, m.flag ? 1 : 0);
      serde::PutString(&out, m.text);
      PutAcks(&out, m.acks);
      break;
    case MsgType::kAdvanceAck:
    case MsgType::kFlush:
    case MsgType::kPing:
    case MsgType::kPong:
      break;  // Empty body.
  }
  return out;
}

bool DecodePayload(const void* data, size_t size, Message* out) {
  serde::Reader r(data, size);
  uint8_t type = 0;
  if (!r.GetU8(&type) || !r.GetU64(&out->req_id)) return false;
  if (type < static_cast<uint8_t>(MsgType::kHello) ||
      type > static_cast<uint8_t>(MsgType::kResumeAck)) {
    return false;
  }
  out->type = static_cast<MsgType>(type);
  switch (out->type) {
    case MsgType::kHello:
      if (!r.GetU32(&out->version) || !r.GetString(&out->name)) return false;
      break;
    case MsgType::kHelloAck:
      if (!r.GetU32(&out->version) || !r.GetString(&out->name) ||
          !r.GetU64(&out->token)) {
        return false;
      }
      break;
    case MsgType::kError:
      if (!r.GetString(&out->text)) return false;
      break;
    case MsgType::kDeclareStream:
      if (!r.GetString(&out->name) || !GetSchema(&r, &out->schema)) {
        return false;
      }
      break;
    case MsgType::kDeclareRelation: {
      uint8_t flag = 0;
      if (!r.GetString(&out->name) || !GetSchema(&r, &out->schema) ||
          !r.GetU8(&flag)) {
        return false;
      }
      out->flag = flag != 0;
      break;
    }
    case MsgType::kDeclareAck:
      if (!r.GetI64(&out->id)) return false;
      break;
    case MsgType::kRegisterQuery:
      if (!r.GetString(&out->name) || !r.GetString(&out->text) ||
          !r.GetU32(&out->shards)) {
        return false;
      }
      break;
    case MsgType::kRegisterAck: {
      uint8_t flag = 0;
      if (!r.GetString(&out->name) || !r.GetU32(&out->shards) ||
          !r.GetU8(&flag) || !r.GetString(&out->text) ||
          !r.GetU8(&out->pattern)) {
        return false;
      }
      out->flag = flag != 0;
      break;
    }
    case MsgType::kIngestBatch: {
      uint32_t n = 0;
      if (!r.GetU32(&n)) return false;
      if (n > r.remaining() / (kMinTupleEncoding + 4) + 1) return false;
      out->batch.clear();
      out->batch.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t stream = 0;
        Tuple t;
        if (!r.GetU32(&stream) || !r.GetTuple(&t)) return false;
        out->batch.emplace_back(stream, std::move(t));
      }
      break;
    }
    case MsgType::kIngestAck:
      if (!r.GetI64(&out->id)) return false;
      break;
    case MsgType::kAdvance:
      if (!r.GetI64(&out->time)) return false;
      break;
    case MsgType::kFlushAck: {
      uint8_t flag = 0;
      if (!r.GetU8(&flag)) return false;
      out->flag = flag != 0;
      break;
    }
    case MsgType::kSnapshotReq:
      if (!r.GetString(&out->name)) return false;
      break;
    case MsgType::kSnapshotResp: {
      uint8_t flag = 0;
      if (!r.GetU8(&flag) || !r.GetI64(&out->time) ||
          !GetTuples(&r, &out->tuples)) {
        return false;
      }
      out->flag = flag != 0;
      break;
    }
    case MsgType::kSubscribe:
      if (!r.GetString(&out->name)) return false;
      break;
    case MsgType::kSubscribeAck: {
      uint8_t flag = 0;
      if (!r.GetU8(&flag) || !r.GetU64(&out->sub_id) ||
          !r.GetU8(&out->pattern) || !r.GetU8(&out->view_kind) ||
          !r.GetI64(&out->time) || !GetTuples(&r, &out->tuples)) {
        return false;
      }
      out->flag = flag != 0;
      break;
    }
    case MsgType::kUnsubscribe:
      if (!r.GetString(&out->name) || !r.GetU64(&out->sub_id)) return false;
      break;
    case MsgType::kUnsubscribeAck: {
      uint8_t flag = 0;
      if (!r.GetU8(&flag)) return false;
      out->flag = flag != 0;
      break;
    }
    case MsgType::kSubData:
    case MsgType::kSubReset:
      if (!r.GetU64(&out->sub_id) || !r.GetU64(&out->seq) ||
          !GetTuples(&r, &out->tuples)) {
        return false;
      }
      break;
    case MsgType::kSubWatermark:
      if (!r.GetU64(&out->sub_id) || !r.GetU64(&out->seq) ||
          !r.GetI64(&out->time)) {
        return false;
      }
      break;
    case MsgType::kSubDropped:
      if (!r.GetU64(&out->sub_id)) return false;
      break;
    case MsgType::kSqlExec:
      if (!r.GetString(&out->text)) return false;
      break;
    case MsgType::kSqlResult: {
      uint8_t flag = 0;
      if (!r.GetU8(&flag) || !r.GetString(&out->text) ||
          !r.GetString(&out->name) || !r.GetI64(&out->id) ||
          !r.GetU64(&out->sub_id) || !r.GetU8(&out->pattern) ||
          !r.GetU8(&out->view_kind) || !r.GetI64(&out->time) ||
          !GetTuples(&r, &out->tuples)) {
        return false;
      }
      out->flag = flag != 0;
      break;
    }
    case MsgType::kResume:
      if (!r.GetU64(&out->token) || !GetAcks(&r, &out->acks)) return false;
      break;
    case MsgType::kResumeAck: {
      uint8_t flag = 0;
      if (!r.GetU8(&flag) || !r.GetString(&out->text) ||
          !GetAcks(&r, &out->acks)) {
        return false;
      }
      out->flag = flag != 0;
      break;
    }
    case MsgType::kAdvanceAck:
    case MsgType::kFlush:
    case MsgType::kPing:
    case MsgType::kPong:
      break;
  }
  // Trailing bytes are corruption, not padding.
  return r.AtEnd();
}

std::string EncodeFrame(const Message& m) {
  const std::string payload = EncodePayload(m);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  serde::PutU32(&out, kMagic);
  serde::PutU32(&out, static_cast<uint32_t>(payload.size()));
  serde::PutU32(&out,
                MaskCrc32c(Crc32c(payload.data(), payload.size())));
  out += payload;
  return out;
}

DecodeStatus DecodeFrame(const void* data, size_t size, Message* out,
                         size_t* consumed) {
  if (size < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  serde::Reader header(data, kFrameHeaderBytes);
  uint32_t magic = 0, length = 0, crc = 0;
  header.GetU32(&magic);
  header.GetU32(&length);
  header.GetU32(&crc);
  if (magic != kMagic) return DecodeStatus::kCorrupt;
  if (length > kMaxFrameBytes) return DecodeStatus::kTooLarge;
  if (size < kFrameHeaderBytes + length) return DecodeStatus::kNeedMore;
  const char* payload = static_cast<const char*>(data) + kFrameHeaderBytes;
  if (MaskCrc32c(Crc32c(payload, length)) != crc) {
    return DecodeStatus::kCorrupt;
  }
  if (!DecodePayload(payload, length, out)) return DecodeStatus::kCorrupt;
  *consumed = kFrameHeaderBytes + length;
  return DecodeStatus::kOk;
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloAck: return "HelloAck";
    case MsgType::kError: return "Error";
    case MsgType::kDeclareStream: return "DeclareStream";
    case MsgType::kDeclareRelation: return "DeclareRelation";
    case MsgType::kDeclareAck: return "DeclareAck";
    case MsgType::kRegisterQuery: return "RegisterQuery";
    case MsgType::kRegisterAck: return "RegisterAck";
    case MsgType::kIngestBatch: return "IngestBatch";
    case MsgType::kIngestAck: return "IngestAck";
    case MsgType::kAdvance: return "Advance";
    case MsgType::kAdvanceAck: return "AdvanceAck";
    case MsgType::kFlush: return "Flush";
    case MsgType::kFlushAck: return "FlushAck";
    case MsgType::kSnapshotReq: return "SnapshotReq";
    case MsgType::kSnapshotResp: return "SnapshotResp";
    case MsgType::kSubscribe: return "Subscribe";
    case MsgType::kSubscribeAck: return "SubscribeAck";
    case MsgType::kUnsubscribe: return "Unsubscribe";
    case MsgType::kUnsubscribeAck: return "UnsubscribeAck";
    case MsgType::kSubData: return "SubData";
    case MsgType::kSubWatermark: return "SubWatermark";
    case MsgType::kSubReset: return "SubReset";
    case MsgType::kSubDropped: return "SubDropped";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kSqlExec: return "SqlExec";
    case MsgType::kSqlResult: return "SqlResult";
    case MsgType::kResume: return "Resume";
    case MsgType::kResumeAck: return "ResumeAck";
  }
  return "Unknown";
}

}  // namespace net
}  // namespace upa
