#include "core/update_pattern.h"

#include <algorithm>

namespace upa {

// The four abbreviations are the paper's own (§3.1); plan dumps print
// them in angle brackets after the operator, e.g. "join   <WK>".
std::string PatternName(UpdatePattern p) {
  switch (p) {
    case UpdatePattern::kMonotonic:
      return "MONO";
    case UpdatePattern::kWeakest:
      return "WKS";
    case UpdatePattern::kWeak:
      return "WK";
    case UpdatePattern::kStrict:
      return "STR";
  }
  return "?";
}

UpdatePattern MaxPattern(UpdatePattern a, UpdatePattern b) {
  return static_cast<UpdatePattern>(
      std::max(static_cast<int>(a), static_cast<int>(b)));
}

}  // namespace upa
