#include "core/optimizer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "common/macros.h"

namespace upa {

namespace {

bool IsRegularJoin(const PlanNode& n) {
  return n.kind == PlanOpKind::kJoin &&
         n.child(1).kind != PlanOpKind::kRelation;
}

bool IsAnyJoin(const PlanNode& n) { return n.kind == PlanOpKind::kJoin; }

/// Applies `fn` to the first node slot (preorder) where it returns true;
/// returns whether any application happened.
bool ApplyFirst(PlanPtr& slot, const std::function<bool(PlanPtr&)>& fn) {
  if (fn(slot)) return true;
  for (auto& c : slot->children) {
    if (ApplyFirst(c, fn)) return true;
  }
  return false;
}

}  // namespace

PlanPtr RewritePushDownSelect(const PlanNode& plan) {
  PlanPtr copy = plan.Clone();
  const bool changed = ApplyFirst(copy, [](PlanPtr& slot) {
    if (slot->kind != PlanOpKind::kSelect) return false;
    PlanNode& sel = *slot;
    PlanNode& child = *sel.mutable_child(0);
    if (child.kind == PlanOpKind::kUnion) {
      // sigma(A union B) == sigma(A) union sigma(B).
      PlanPtr left = MakeSelect(std::move(child.children[0]), sel.preds);
      PlanPtr right = MakeSelect(std::move(child.children[1]), sel.preds);
      PlanPtr merged = MakeUnion(std::move(left), std::move(right));
      slot = std::move(merged);
      return true;
    }
    if (!IsAnyJoin(child)) return false;
    const int lw = child.child(0).schema.num_fields();
    std::vector<Predicate> left_preds;
    std::vector<Predicate> right_preds;
    std::vector<Predicate> keep;
    for (const Predicate& p : sel.preds) {
      if (p.col < lw) {
        left_preds.push_back(p);
      } else if (child.child(1).kind != PlanOpKind::kRelation) {
        Predicate q = p;
        q.col -= lw;
        right_preds.push_back(q);
      } else {
        keep.push_back(p);  // Table-side predicates stay above.
      }
    }
    if (left_preds.empty() && right_preds.empty()) return false;
    PlanPtr l = std::move(child.children[0]);
    PlanPtr r = std::move(child.children[1]);
    if (!left_preds.empty()) l = MakeSelect(std::move(l), left_preds);
    if (!right_preds.empty()) r = MakeSelect(std::move(r), right_preds);
    PlanPtr join =
        MakeJoin(std::move(l), std::move(r), child.left_col, child.right_col);
    slot = keep.empty() ? std::move(join)
                        : MakeSelect(std::move(join), std::move(keep));
    return true;
  });
  return changed ? std::move(copy) : nullptr;
}

PlanPtr RewriteNegationPullUp(const PlanNode& plan) {
  PlanPtr copy = plan.Clone();
  const bool changed = ApplyFirst(copy, [](PlanPtr& slot) {
    if (!IsAnyJoin(*slot)) return false;
    PlanNode& join = *slot;
    const int lw = join.child(0).schema.num_fields();
    if (join.child(0).kind == PlanOpKind::kNegate) {
      // J(N(A, B), C) -> N(J(A, C), B): A's columns keep their indices.
      PlanNode& neg = *join.mutable_child(0);
      PlanPtr a = std::move(neg.children[0]);
      PlanPtr b = std::move(neg.children[1]);
      const int la = neg.left_col;
      const int ra = neg.right_col;
      PlanPtr new_join = MakeJoin(std::move(a), std::move(join.children[1]),
                                  join.left_col, join.right_col);
      slot = MakeNegate(std::move(new_join), std::move(b), la, ra);
      return true;
    }
    if (join.child(1).kind == PlanOpKind::kNegate) {
      // J(C, N(A, B)) -> N(J(C, A), B): A's columns shift by C's width.
      PlanNode& neg = *join.mutable_child(1);
      PlanPtr a = std::move(neg.children[0]);
      PlanPtr b = std::move(neg.children[1]);
      const int la = neg.left_col;
      const int ra = neg.right_col;
      PlanPtr new_join = MakeJoin(std::move(join.children[0]), std::move(a),
                                  join.left_col, join.right_col);
      slot = MakeNegate(std::move(new_join), std::move(b), lw + la, ra);
      return true;
    }
    return false;
  });
  return changed ? std::move(copy) : nullptr;
}

PlanPtr RewriteNegationPushDown(const PlanNode& plan) {
  PlanPtr copy = plan.Clone();
  const bool changed = ApplyFirst(copy, [](PlanPtr& slot) {
    if (slot->kind != PlanOpKind::kNegate) return false;
    PlanNode& neg = *slot;
    if (!IsRegularJoin(neg.child(0))) return false;
    PlanNode& join = *neg.mutable_child(0);
    const int lw = join.child(0).schema.num_fields();
    PlanPtr b = std::move(neg.children[1]);
    if (neg.left_col < lw) {
      // N(J(A, C), B) on an A-attribute -> J(N(A, B), C).
      PlanPtr pushed = MakeNegate(std::move(join.children[0]), std::move(b),
                                  neg.left_col, neg.right_col);
      slot = MakeJoin(std::move(pushed), std::move(join.children[1]),
                      join.left_col, join.right_col);
    } else {
      // N(J(C, A), B) on an A-attribute -> J(C, N(A, B)).
      PlanPtr pushed = MakeNegate(std::move(join.children[1]), std::move(b),
                                  neg.left_col - lw, neg.right_col);
      slot = MakeJoin(std::move(join.children[0]), std::move(pushed),
                      join.left_col, join.right_col);
    }
    return true;
  });
  return changed ? std::move(copy) : nullptr;
}

PlanPtr RewriteDistinctPushDown(const PlanNode& plan) {
  PlanPtr copy = plan.Clone();
  const bool changed = ApplyFirst(copy, [](PlanPtr& slot) {
    if (slot->kind != PlanOpKind::kDistinct) return false;
    PlanNode& dist = *slot;
    if (!IsRegularJoin(dist.child(0))) return false;
    PlanNode& join = *dist.mutable_child(0);
    if (join.child(0).kind == PlanOpKind::kDistinct ||
        join.child(1).kind == PlanOpKind::kDistinct) {
      return false;  // Already pushed.
    }
    const int lw = join.child(0).schema.num_fields();
    std::vector<int> left_keys;
    std::vector<int> right_keys;
    for (int k : dist.cols) {
      if (k < lw) {
        left_keys.push_back(k);
      } else {
        right_keys.push_back(k - lw);
      }
    }
    // The join attributes must be part of the pushed keys or join results
    // would be lost.
    if (std::find(left_keys.begin(), left_keys.end(), join.left_col) ==
        left_keys.end()) {
      left_keys.push_back(join.left_col);
    }
    if (std::find(right_keys.begin(), right_keys.end(), join.right_col) ==
        right_keys.end()) {
      right_keys.push_back(join.right_col);
    }
    PlanPtr l = MakeDistinct(std::move(join.children[0]), left_keys);
    PlanPtr r = MakeDistinct(std::move(join.children[1]), right_keys);
    PlanPtr new_join =
        MakeJoin(std::move(l), std::move(r), join.left_col, join.right_col);
    slot = MakeDistinct(std::move(new_join), dist.cols);
    return true;
  });
  return changed ? std::move(copy) : nullptr;
}

OptimizedPlan Optimize(const PlanNode& plan, const Catalog& catalog,
                       ExecMode mode, const PlannerOptions& base_options) {
  constexpr int kMaxCandidates = 32;
  using Rewrite = PlanPtr (*)(const PlanNode&);
  const std::vector<std::pair<std::string, Rewrite>> rules = {
      {"select-push-down", &RewritePushDownSelect},
      {"negation-pull-up", &RewriteNegationPullUp},
      {"negation-push-down", &RewriteNegationPushDown},
      {"distinct-push-down", &RewriteDistinctPushDown},
  };

  std::vector<PlanCandidate> candidates;
  std::set<std::string> seen;
  auto add = [&](PlanPtr p, std::vector<std::string> applied) -> bool {
    AnnotatePatterns(p.get());
    if (!IsValidPlan(*p)) return false;
    std::string fingerprint = p->ToString();
    if (!seen.insert(fingerprint).second) return false;
    PlanCandidate c;
    c.plan = std::move(p);
    c.rules = std::move(applied);
    candidates.push_back(std::move(c));
    return true;
  };
  add(plan.Clone(), {});

  // Breadth-first closure over the rewrite rules.
  for (size_t i = 0;
       i < candidates.size() &&
       candidates.size() < static_cast<size_t>(kMaxCandidates);
       ++i) {
    for (const auto& [name, rule] : rules) {
      PlanPtr rewritten = rule(*candidates[i].plan);
      if (rewritten == nullptr) continue;
      std::vector<std::string> applied = candidates[i].rules;
      applied.push_back(name);
      add(std::move(rewritten), std::move(applied));
      if (candidates.size() >= static_cast<size_t>(kMaxCandidates)) break;
    }
  }

  for (PlanCandidate& c : candidates) {
    const PlanCost cost = EstimatePlanCost(*c.plan, catalog, mode, base_options);
    c.cost = cost.total;
    c.premature_frequency = cost.premature_frequency;
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const PlanCandidate& a, const PlanCandidate& b) {
                     return a.cost < b.cost;
                   });

  OptimizedPlan out;
  out.plan = candidates.front().plan->Clone();
  out.cost = candidates.front().cost;
  out.options = base_options;
  out.options.premature_frequency = candidates.front().premature_frequency;
  std::string report = "mode=" + ExecModeName(mode) + "\n";
  for (const PlanCandidate& c : candidates) {
    report += "cost=" + std::to_string(c.cost) + " premature=" +
              std::to_string(c.premature_frequency) + " rules=[";
    for (size_t i = 0; i < c.rules.size(); ++i) {
      if (i > 0) report += ",";
      report += c.rules[i];
    }
    report += "]\n" + c.plan->ToString();
  }
  out.report = std::move(report);
  out.candidates = std::move(candidates);
  return out;
}

}  // namespace upa
