#ifndef UPA_CORE_OPTIMIZER_H_
#define UPA_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"

namespace upa {

/// One costed candidate produced during optimization.
struct PlanCandidate {
  PlanPtr plan;
  double cost = 0.0;
  double premature_frequency = 0.0;
  std::vector<std::string> rules;  ///< Rewrites that produced this plan.
};

/// Result of Optimize(): the chosen plan plus the ranked candidate list
/// (kept for inspection, reports and the cost-model validation bench).
struct OptimizedPlan {
  PlanPtr plan;
  double cost = 0.0;
  /// Planner options with premature_frequency filled in from the cost
  /// model, so BuildPipeline's StrStrategy::kAuto resolves the Section
  /// 5.4.3 choice the way the optimizer intended.
  PlannerOptions options;
  std::vector<PlanCandidate> candidates;  ///< Sorted by ascending cost.
  std::string report;                     ///< Human-readable summary.
};

/// Update-pattern-aware rule-based optimizer (Section 5.4.2).
///
/// Rewrite rules:
///  1. *Selection push-down* (conventional): selections migrate below
///     joins/unions when their predicates reference one input only.
///  2. *Update pattern simplification* -- negation pull-up: a join above
///     whose left input is a negation commutes to a negation above the
///     join, shrinking the strict non-monotonic region of the plan
///     (Figure 6, left) so fewer operators process negative tuples.
///  3. Negation push-down: the inverse of rule 2, preferable when the
///     negation is highly selective and shrinks intermediate results.
///  4. *Duplicate elimination push-down*: a distinct above a join spawns
///     distincts below the join (keyed on each side's contribution plus
///     the join attribute), sharing delta-distinct output as join input.
///
/// Note on rules 2/3: with the paper's Equation 1 multiplicity semantics
/// the two forms agree exactly when each negation-attribute value matches
/// at most one tuple on the join's other side (and always under NOT-EXISTS
/// set semantics); the paper treats the Figure 6 rewritings as equivalent,
/// and the E5 experiment compares their performance as the paper does.
///
/// All candidates are annotated, validated and costed with the Section
/// 5.4.1 model for the given execution mode; the cheapest is returned.
OptimizedPlan Optimize(const PlanNode& plan, const Catalog& catalog,
                       ExecMode mode, const PlannerOptions& base_options = {});

// --- Individual rewrites, exposed for tests and benches. Each returns
// nullptr when the rule does not apply anywhere in the plan; otherwise a
// rewritten deep copy (first applicable site, preorder). ---

PlanPtr RewritePushDownSelect(const PlanNode& plan);
PlanPtr RewriteNegationPullUp(const PlanNode& plan);
PlanPtr RewriteNegationPushDown(const PlanNode& plan);
PlanPtr RewriteDistinctPushDown(const PlanNode& plan);

}  // namespace upa

#endif  // UPA_CORE_OPTIMIZER_H_
