#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/macros.h"

namespace upa {

namespace {

constexpr double kHuge = 1e12;  // Stand-in for unbounded stream state.

double Cap(double x, double cap) { return std::min(x, cap); }

}  // namespace

const StreamStats& Catalog::Stream(int id) const {
  static const StreamStats kDefault;
  auto it = streams.find(id);
  return it == streams.end() ? kDefault : it->second;
}

double Catalog::Overlap(int stream_l, int col_l, int stream_r,
                        int col_r) const {
  auto it = value_overlap.find({{stream_l, col_l}, {stream_r, col_r}});
  return it == value_overlap.end() ? 1.0 : it->second;
}

NodeEstimate EstimateNode(const PlanNode& n, const Catalog& catalog) {
  NodeEstimate e;
  const int width = n.schema.num_fields();
  e.distinct.assign(static_cast<size_t>(width), 1.0);
  e.origin.assign(static_cast<size_t>(width), {-1, -1});

  auto fill_from_stream = [&](int stream_id) {
    const StreamStats& s = catalog.Stream(stream_id);
    for (int c = 0; c < width; ++c) {
      auto it = s.columns.find(c);
      e.distinct[size_t(c)] = it == s.columns.end()
                                  ? Cap(e.size, 1000.0)
                                  : Cap(it->second.distinct, kHuge);
      e.origin[size_t(c)] = {stream_id, c};
    }
  };

  switch (n.kind) {
    case PlanOpKind::kStream: {
      const StreamStats& s = catalog.Stream(n.stream_id);
      e.rate = s.rate;
      e.size = kHuge;  // Unbounded (monotonic plans never expire state).
      fill_from_stream(n.stream_id);
      return e;
    }
    case PlanOpKind::kRelation: {
      const StreamStats& s = catalog.Stream(n.stream_id);
      e.rate = s.rate;  // Update rate.
      e.size = s.size;
      fill_from_stream(n.stream_id);
      for (double& d : e.distinct) d = Cap(d, std::max(1.0, e.size));
      return e;
    }
    case PlanOpKind::kWindow: {
      const NodeEstimate in = EstimateNode(n.child(0), catalog);
      e.rate = in.rate;
      e.size = in.rate * static_cast<double>(n.window_size);
      e.distinct = in.distinct;
      e.origin = in.origin;
      for (double& d : e.distinct) d = Cap(d, std::max(1.0, e.size));
      return e;
    }
    case PlanOpKind::kCountWindow: {
      const NodeEstimate in = EstimateNode(n.child(0), catalog);
      e.rate = in.rate;
      e.size = static_cast<double>(n.count);
      e.distinct = in.distinct;
      e.origin = in.origin;
      for (double& d : e.distinct) d = Cap(d, std::max(1.0, e.size));
      // Every arrival evicts one tuple once the window is full; all those
      // evictions are signalled with negative tuples.
      e.premature_rate = in.rate;
      return e;
    }
    case PlanOpKind::kSelect: {
      const NodeEstimate in = EstimateNode(n.child(0), catalog);
      double sel = 1.0;
      for (const Predicate& p : n.preds) {
        double p_sel = 0.5;
        const double d = in.distinct[static_cast<size_t>(p.col)];
        if (p.op == CmpOp::kEq) {
          p_sel = 1.0 / std::max(1.0, d);
          const auto [stream, col] = in.origin[static_cast<size_t>(p.col)];
          if (stream >= 0) {
            const StreamStats& s = catalog.Stream(stream);
            auto cit = s.columns.find(col);
            if (cit != s.columns.end()) {
              auto fit = cit->second.value_freq.find(p.rhs);
              if (fit != cit->second.value_freq.end()) p_sel = fit->second;
            }
          }
        } else if (p.op == CmpOp::kNe) {
          p_sel = 1.0 - 1.0 / std::max(1.0, d);
        } else {
          p_sel = 1.0 / 3.0;  // Range predicate heuristic.
        }
        sel *= p_sel;
      }
      e = in;
      e.rate = in.rate * sel;
      e.size = in.size >= kHuge ? kHuge : in.size * sel;
      for (size_t c = 0; c < e.distinct.size(); ++c) {
        e.distinct[c] = Cap(e.distinct[c], std::max(1.0, e.size));
      }
      for (const Predicate& p : n.preds) {
        if (p.op == CmpOp::kEq) e.distinct[static_cast<size_t>(p.col)] = 1.0;
      }
      e.premature_rate = in.premature_rate * sel;
      return e;
    }
    case PlanOpKind::kProject: {
      const NodeEstimate in = EstimateNode(n.child(0), catalog);
      e.rate = in.rate;
      e.size = in.size;
      e.premature_rate = in.premature_rate;
      for (size_t i = 0; i < n.cols.size(); ++i) {
        e.distinct[i] = in.distinct[static_cast<size_t>(n.cols[i])];
        e.origin[i] = in.origin[static_cast<size_t>(n.cols[i])];
      }
      return e;
    }
    case PlanOpKind::kUnion: {
      const NodeEstimate l = EstimateNode(n.child(0), catalog);
      const NodeEstimate r = EstimateNode(n.child(1), catalog);
      e.rate = l.rate + r.rate;
      e.size = Cap(l.size + r.size, kHuge);
      for (int c = 0; c < width; ++c) {
        e.distinct[size_t(c)] = Cap(
            l.distinct[size_t(c)] + r.distinct[size_t(c)], std::max(1.0, e.size));
        e.origin[size_t(c)] = l.origin[size_t(c)];
      }
      e.premature_rate = l.premature_rate + r.premature_rate;
      return e;
    }
    case PlanOpKind::kJoin: {
      const NodeEstimate l = EstimateNode(n.child(0), catalog);
      const NodeEstimate r = EstimateNode(n.child(1), catalog);
      const double d = std::max(
          {1.0, l.distinct[static_cast<size_t>(n.left_col)],
           r.distinct[static_cast<size_t>(n.right_col)]});
      const PlanNode& rnode = n.child(1);
      if (rnode.kind == PlanOpKind::kRelation) {
        const double match = r.size / d;
        e.rate = l.rate * match + (rnode.retroactive ? r.rate * l.size / d : 0);
        e.size = l.size >= kHuge ? kHuge : l.size * match;
      } else {
        e.rate = (l.rate * r.size + r.rate * l.size) / d;
        e.size = (l.size >= kHuge || r.size >= kHuge) ? kHuge
                                                      : l.size * r.size / d;
      }
      const int lw = n.child(0).schema.num_fields();
      for (int c = 0; c < width; ++c) {
        const NodeEstimate& src = c < lw ? l : r;
        const int sc = c < lw ? c : c - lw;
        e.distinct[size_t(c)] =
            Cap(src.distinct[static_cast<size_t>(sc)], std::max(1.0, e.size));
        e.origin[size_t(c)] = src.origin[static_cast<size_t>(sc)];
      }
      // Premature deletions fan out through the join like insertions do.
      const double fanout = std::max(1.0, e.size / std::max(1.0, l.size));
      e.premature_rate = l.premature_rate * fanout + r.premature_rate * fanout;
      return e;
    }
    case PlanOpKind::kIntersect: {
      const NodeEstimate l = EstimateNode(n.child(0), catalog);
      const NodeEstimate r = EstimateNode(n.child(1), catalog);
      const double d =
          std::max({1.0, l.distinct.empty() ? 1.0 : l.distinct[0],
                    r.distinct.empty() ? 1.0 : r.distinct[0]});
      e.rate = (l.rate * r.size + r.rate * l.size) / d;
      e.size = Cap(l.size * r.size / d, kHuge);
      e.distinct = l.distinct;
      e.origin = l.origin;
      e.premature_rate = l.premature_rate + r.premature_rate;
      return e;
    }
    case PlanOpKind::kDistinct: {
      const NodeEstimate in = EstimateNode(n.child(0), catalog);
      double keys = 1.0;
      for (int c : n.cols) {
        keys *= std::max(1.0, in.distinct[static_cast<size_t>(c)]);
      }
      e.size = Cap(std::min(keys, in.size), kHuge);
      // New-key arrivals plus replacement re-emissions as output expires.
      e.rate = in.rate * (e.size / std::max(1.0, in.size)) +
               (in.size >= kHuge ? 0.0 : e.size / std::max(1.0, in.size) *
                                             in.rate * 0.5);
      e.distinct = in.distinct;
      e.origin = in.origin;
      for (double& dd : e.distinct) dd = Cap(dd, std::max(1.0, e.size));
      e.premature_rate = in.premature_rate;
      return e;
    }
    case PlanOpKind::kGroupBy: {
      const NodeEstimate in = EstimateNode(n.child(0), catalog);
      const double groups =
          n.group_col >= 0
              ? std::max(1.0, in.distinct[static_cast<size_t>(n.group_col)])
              : 1.0;
      e.rate = 2.0 * in.rate;  // One update per arrival and per expiration.
      e.size = groups;
      e.distinct[0] = groups;
      e.distinct[1] = groups;
      e.distinct[2] = groups;
      return e;
    }
    case PlanOpKind::kNegate: {
      const NodeEstimate l = EstimateNode(n.child(0), catalog);
      const NodeEstimate r = EstimateNode(n.child(1), catalog);
      const double d1 =
          std::max(1.0, l.distinct[static_cast<size_t>(n.left_col)]);
      const double d2 =
          std::max(1.0, r.distinct[static_cast<size_t>(n.right_col)]);
      const auto [ls, lc] = l.origin[static_cast<size_t>(n.left_col)];
      const auto [rs, rc] = r.origin[static_cast<size_t>(n.right_col)];
      const double overlap =
          (ls >= 0 && rs >= 0) ? catalog.Overlap(ls, lc, rs, rc) : 1.0;
      // A left value is "covered" (suppressed) when at least one of the
      // ~size2 right tuples carries it; Poisson approximation.
      const double covered =
          overlap * (1.0 - std::exp(-r.size / std::max(1.0, d2)));
      e.size = Cap(l.size * (1.0 - covered), kHuge);
      e.rate = l.rate * (1.0 - covered);
      e.distinct = l.distinct;
      e.origin = l.origin;
      for (double& dd : e.distinct) dd = Cap(dd, std::max(1.0, e.size));
      // Premature deletions (Section 5.3.2): a W2 arrival whose value is
      // live in W1 but currently uncovered evicts answer tuples.
      const double p_in_left =
          1.0 - std::exp(-std::min(l.size, kHuge) / std::max(1.0, d1));
      const double p_uncovered = std::exp(-r.size / std::max(1.0, d2));
      e.premature_rate = l.premature_rate + r.premature_rate +
                         r.rate * overlap * p_in_left * p_uncovered;
      return e;
    }
  }
  UPA_FATAL("unhandled plan node kind");
}

double EstimatePrematureFrequency(const PlanNode& plan,
                                  const Catalog& catalog) {
  const NodeEstimate e = EstimateNode(plan, catalog);
  // Natural deletions happen at roughly the output rate (everything that
  // enters the answer eventually leaves it).
  const double natural = std::max(e.rate, 1e-9);
  return e.premature_rate / (e.premature_rate + natural);
}

namespace {

struct CostCtx {
  const Catalog* catalog;
  ExecMode mode;
  const PlannerOptions* opts;
  PlanCost* out;
};

/// Structure maintenance cost per unit time for a buffer holding `size`
/// tuples fed at `rate`, per Sections 2.3.3 and 5.3.2.
double MaintainCost(ExecMode mode, UpdatePattern pattern, double rate,
                    double size, bool lazy, const PlannerOptions& opts) {
  if (size >= 1e12) size = 0;  // Monotonic state is never expired.
  switch (mode) {
    case ExecMode::kNegativeTuple:
      // Hash insert plus hash delete per tuple, plus the negative tuple
      // itself being generated and routed (factored in by the caller
      // doubling the processed-tuple count).
      return 2.0 * rate;
    case ExecMode::kDirect: {
      if (lazy) {
        // Physical purges amortize to one scan per lazy interval.
        return rate + 1.0 / std::max(1e-9, opts.lazy_fraction);
      }
      return rate * size;  // Sequential scan per arrival.
    }
    case ExecMode::kUpa:
      switch (pattern) {
        case UpdatePattern::kMonotonic:
        case UpdatePattern::kWeakest:
          return rate;  // FIFO push/pop.
        case UpdatePattern::kWeak:
        case UpdatePattern::kStrict:
          return rate * (size / std::max(1, opts.num_partitions) + 1.0);
      }
  }
  return rate;
}

/// Effective probe-size multiplier under heavy-light partitioning
/// (DESIGN.md Section 16). A heavy key's matches are materialized per
/// key, so a probe carrying value v scans only v's copies instead of the
/// whole buffer: the expected scanned fraction becomes
///   sum_{v heavy} f_v^2  +  (1 - sum_{v heavy} f_v)
/// (probe frequency times state share for heavy values, full scan for
/// the light residue). A key qualifies as heavy when its expected count
/// within one repartition epoch (~ a quarter window, so f_v * size / 4
/// by Little's law) reaches the threshold — mirroring the runtime
/// tracker's promotion rule. Returns 1.0 when the knob is off or the
/// probed side has no usable key statistics (never reads the
/// environment: EXPLAIN output must not depend on UPA_HEAVY_THRESHOLD).
double HeavyProbeFactor(const NodeEstimate& probed, int key_col,
                        const CostCtx& ctx) {
  const PlannerOptions& opts = *ctx.opts;
  if (opts.heavy_threshold <= 0) return 1.0;
  if (key_col < 0 || static_cast<size_t>(key_col) >= probed.origin.size()) {
    return 1.0;
  }
  const double size = std::min(probed.size, 1e12);
  if (size <= 0.0) return 1.0;
  const double promote_mass =
      4.0 * static_cast<double>(opts.heavy_threshold) / size;
  const size_t max_keys =
      static_cast<size_t>(std::max(1, opts.heavy_max_keys));
  const auto [stream, col] = probed.origin[static_cast<size_t>(key_col)];
  std::vector<double> freqs;
  if (stream >= 0) {
    const auto sit = ctx.catalog->streams.find(stream);
    if (sit != ctx.catalog->streams.end()) {
      const auto cit = sit->second.columns.find(col);
      if (cit != sit->second.columns.end()) {
        for (const auto& [value, f] : cit->second.value_freq) {
          (void)value;
          if (f >= promote_mass) freqs.push_back(f);
        }
      }
    }
  }
  if (freqs.empty()) {
    // Uniform fallback: every key carries 1/d of the mass; all qualify
    // or none do.
    const double d = std::max(
        1.0, probed.distinct[static_cast<size_t>(key_col)]);
    const double f = 1.0 / d;
    if (f < promote_mass) return 1.0;
    const double k = std::min(d, static_cast<double>(max_keys));
    return Cap(k * f * f + (1.0 - k * f), 1.0);
  }
  std::sort(freqs.begin(), freqs.end(), std::greater<double>());
  if (freqs.size() > max_keys) freqs.resize(max_keys);
  double mass = 0.0, sq = 0.0;
  for (double f : freqs) {
    mass += f;
    sq += f * f;
  }
  mass = std::min(mass, 1.0);
  return Cap(sq + (1.0 - mass), 1.0);
}

double NodeCost(const PlanNode& n, const NodeEstimate& e, CostCtx& ctx) {
  const ExecMode mode = ctx.mode;
  const PlannerOptions& opts = *ctx.opts;
  // Under the negative tuple approach every stored tuple is processed
  // twice (arrival + negative), Section 2.3.1.
  const double nt_factor = mode == ExecMode::kNegativeTuple ? 2.0 : 1.0;
  switch (n.kind) {
    case PlanOpKind::kStream:
    case PlanOpKind::kRelation:
      return 0.0;
    case PlanOpKind::kWindow: {
      // NT materializes the window itself.
      const NodeEstimate in = EstimateNode(n.child(0), *ctx.catalog);
      return mode == ExecMode::kNegativeTuple ? 2.0 * in.rate : in.rate;
    }
    case PlanOpKind::kCountWindow: {
      const NodeEstimate in = EstimateNode(n.child(0), *ctx.catalog);
      return 2.0 * in.rate;
    }
    case PlanOpKind::kSelect:
    case PlanOpKind::kProject:
    case PlanOpKind::kUnion: {
      double rates = 0.0;
      for (const auto& c : n.children) {
        rates += EstimateNode(*c, *ctx.catalog).rate;
      }
      return nt_factor * rates;
    }
    case PlanOpKind::kJoin: {
      const NodeEstimate l = EstimateNode(n.child(0), *ctx.catalog);
      const NodeEstimate r = EstimateNode(n.child(1), *ctx.catalog);
      const PlanNode& rnode = n.child(1);
      if (rnode.kind == PlanOpKind::kRelation) {
        const double probe = mode == ExecMode::kDirect
                                 ? l.rate * r.size  // List scan.
                                 : l.rate;          // Hash probe.
        const double maintain =
            rnode.retroactive
                ? MaintainCost(mode, n.child(0).pattern, l.rate,
                               std::min(l.size, 1e12), /*lazy=*/true, opts) +
                      r.rate * std::min(l.size, 1e12) /
                          std::max(1.0, l.distinct[static_cast<size_t>(
                                            n.left_col)])
                : 0.0;
        return probe + maintain;
      }
      // Probes scan the other input's live state in every strategy; the
      // negative tuple approach processes each tuple twice (Section 5.4.1).
      // Heavy-light partitioning shrinks the effective scanned state of
      // each side when the join key is skewed (DESIGN.md Section 16).
      const double probe =
          nt_factor *
          (l.rate * std::min(r.size, 1e12) *
               HeavyProbeFactor(r, n.right_col, ctx) +
           r.rate * std::min(l.size, 1e12) *
               HeavyProbeFactor(l, n.left_col, ctx));
      const double maintain =
          MaintainCost(mode, n.child(0).pattern, l.rate,
                       std::min(l.size, 1e12), /*lazy=*/true, opts) +
          MaintainCost(mode, n.child(1).pattern, r.rate,
                       std::min(r.size, 1e12), /*lazy=*/true, opts);
      // Premature deletions scan partitioned state under direct execution.
      const double premature =
          mode == ExecMode::kNegativeTuple
              ? 0.0
              : (l.premature_rate + r.premature_rate) *
                    (std::min(l.size, 1e12) + std::min(r.size, 1e12));
      return probe + maintain + premature;
    }
    case PlanOpKind::kIntersect: {
      const NodeEstimate l = EstimateNode(n.child(0), *ctx.catalog);
      const NodeEstimate r = EstimateNode(n.child(1), *ctx.catalog);
      const double probe = l.rate * std::min(r.size, 1e12) +
                           r.rate * std::min(l.size, 1e12);
      return nt_factor * probe +
             MaintainCost(mode, n.child(0).pattern, l.rate,
                          std::min(l.size, 1e12), true, opts) +
             MaintainCost(mode, n.child(1).pattern, r.rate,
                          std::min(r.size, 1e12), true, opts);
    }
    case PlanOpKind::kDistinct: {
      const NodeEstimate in = EstimateNode(n.child(0), *ctx.catalog);
      const double in_size = std::min(in.size, 1e12);
      const bool delta_eligible = mode == ExecMode::kUpa &&
                                  n.child(0).pattern != UpdatePattern::kStrict;
      // Every arrival scans (half) the stored output for its key. The
      // duplicate check is a single-key probe, so the heavy-light factor
      // applies; the input estimate supplies the arrival frequencies and
      // the promote-mass normalizer (conservative: it charges a heavy
      // probe its match count in the input, though the output stores at
      // most one tuple per key).
      const double dup_hl = n.cols.size() == 1
                                ? HeavyProbeFactor(in, n.cols[0], ctx)
                                : 1.0;
      const double probe = in.rate * e.size / 2.0 * dup_hl;
      if (delta_eligible) {
        // Section 5.4.1: cost of the delta operator.
        return probe + MaintainCost(mode, UpdatePattern::kWeak, e.rate,
                                    2.0 * e.size, false, opts);
      }
      // Classic: replacement scans of the stored input on output expiry.
      // Single-key distinct replacement probes are key lookups, so the
      // heavy-light factor applies to the scanned input (Section 16).
      const double hl = n.cols.size() == 1
                            ? HeavyProbeFactor(in, n.cols[0], ctx)
                            : 1.0;
      const double replacement_rate = e.size / std::max(1.0, in_size) * in.rate;
      const double replace_cost =
          mode == ExecMode::kNegativeTuple
              ? nt_factor * in.rate
              : replacement_rate * in_size * hl;
      return probe + replace_cost +
             MaintainCost(mode, n.child(0).pattern, in.rate, in_size, true,
                          opts) +
             MaintainCost(mode, UpdatePattern::kWeak, e.rate, e.size, false,
                          opts);
    }
    case PlanOpKind::kGroupBy: {
      const NodeEstimate in = EstimateNode(n.child(0), *ctx.catalog);
      const double groups = std::max(1.0, e.size);
      const double update_cost = std::log2(groups + 1.0) + 1.0;
      return 2.0 * in.rate * update_cost +
             MaintainCost(mode, n.child(0).pattern, in.rate,
                          std::min(in.size, 1e12), false, opts);
    }
    case PlanOpKind::kNegate: {
      const NodeEstimate l = EstimateNode(n.child(0), *ctx.catalog);
      const NodeEstimate r = EstimateNode(n.child(1), *ctx.catalog);
      const double d1 =
          std::max(2.0, l.distinct[static_cast<size_t>(n.left_col)]);
      const double d2 =
          std::max(2.0, r.distinct[static_cast<size_t>(n.right_col)]);
      return 2.0 * l.rate * std::log2(d1) + 2.0 * r.rate * std::log2(d2) +
             MaintainCost(mode, n.child(0).pattern, l.rate,
                          std::min(l.size, 1e12), false, opts) +
             MaintainCost(mode, n.child(1).pattern, r.rate,
                          std::min(r.size, 1e12), false, opts);
    }
  }
  UPA_FATAL("unhandled plan node kind");
}

void Walk(const PlanNode& n, CostCtx& ctx) {
  for (const auto& c : n.children) Walk(*c, ctx);
  const NodeEstimate e = EstimateNode(n, *ctx.catalog);
  const double cost = NodeCost(n, e, ctx);
  ctx.out->per_node.emplace_back(PatternName(n.pattern), cost);
  ctx.out->total += cost;
}

}  // namespace

PlanCost EstimatePlanCost(const PlanNode& plan, const Catalog& catalog,
                          ExecMode mode, const PlannerOptions& options) {
  PlanCost cost;
  CostCtx ctx{&catalog, mode, &options, &cost};
  Walk(plan, ctx);
  // Result view maintenance.
  const NodeEstimate root = EstimateNode(plan, catalog);
  const double view_cost =
      plan.kind == PlanOpKind::kGroupBy
          ? root.rate
          : MaintainCost(mode, plan.pattern, root.rate,
                         std::min(root.size, 1e12), false, options) +
                (mode == ExecMode::kNegativeTuple
                     ? 0.0
                     : root.premature_rate * std::min(root.size, 1e12) /
                           (mode == ExecMode::kUpa
                                ? std::max(1, options.num_partitions)
                                : 1));
  cost.per_node.emplace_back("view", view_cost);
  cost.total += view_cost;
  cost.premature_frequency = EstimatePrematureFrequency(plan, catalog);
  return cost;
}

}  // namespace upa
