#ifndef UPA_CORE_PHYSICAL_PLANNER_H_
#define UPA_CORE_PHYSICAL_PLANNER_H_

#include <map>
#include <memory>
#include <string>

#include "core/logical_plan.h"
#include "exec/pipeline.h"

namespace upa {

/// The three query execution strategies compared in the paper's
/// experiments (Section 6.1).
enum class ExecMode {
  /// NT (Section 2.3.1): every window is materialized and generates a
  /// negative tuple per expiration; operator state is hash tables on the
  /// key attribute; the view is removal-by-negative-tuple only.
  kNegativeTuple,
  /// DIRECT (Section 2.3.2): no negative tuples outside negation; state
  /// and views are straightforward insertion-ordered lists that are
  /// scanned to find expired tuples.
  kDirect,
  /// UPA (Section 5): direct execution with update-pattern-aware operator
  /// implementations (delta-distinct) and state structures (FIFO for WKS
  /// edges, partitioned-by-expiration for WK edges), plus the hybrid
  /// negative-tuple strategy above negation when premature expirations
  /// are expected to be frequent (Section 5.4.3).
  kUpa,
};

std::string ExecModeName(ExecMode mode);

/// Premature-expiration frequency above which StrStrategy::kAuto selects
/// the hybrid negative-tuple strategy. Section 5.4.3 says "if we are
/// expecting the majority of deletions to occur via negative tuples";
/// the constant is calibrated slightly below one half because the
/// E3/bench_cost_model measurements show the hash view already winning
/// at a measured premature share of ~0.5.
inline constexpr double kPrematureFrequencyThreshold = 0.4;

/// Strategy for storing strict non-monotonic (sub)results under UPA
/// (Section 5.3.2): scan-on-negative partitioned structures when premature
/// expirations are rare, or negative-tuple maintenance with hash state
/// when they dominate.
enum class StrStrategy {
  kAuto,           ///< Decide from `premature_frequency`.
  kPartitioned,    ///< Always the partitioned structure.
  kNegativeTuples  ///< Always the hybrid negative-tuple strategy.
};

/// Physical planning knobs (the user-defined defaults of Section 5.4.1).
struct PlannerOptions {
  /// Partitions of each PartitionedBuffer (experiment E6's parameter).
  int num_partitions = 10;
  /// Buckets of each HashBuffer under the negative tuple approach.
  int hash_buckets = 1 << 12;
  /// Lazy purge interval as a fraction of the window span (Section 6.1
  /// fixes it at five percent of the window size).
  double lazy_fraction = 0.05;
  /// How to maintain STR results under UPA.
  StrStrategy str_strategy = StrStrategy::kAuto;
  /// Expected fraction of result deletions that are premature (negation
  /// generated); consulted when str_strategy == kAuto. The threshold
  /// follows Section 5.4.3's "majority of deletions" guidance.
  double premature_frequency = 0.0;
  /// Extension (see IndexedBuffer): under UPA, store probe-operator input
  /// state (join/intersection) in the key-indexed, expiration-partitioned
  /// grid so probes stop scanning the whole buffer. Off by default to
  /// match the paper's UPA configuration; the E9 ablation measures it.
  bool index_probed_state = false;
  /// Hash fan-out of IndexedBuffer when index_probed_state is set.
  int index_buckets = 64;
  /// Heavy-light state partitioning (DESIGN.md Section 16): per-epoch
  /// probe count at which a key is promoted to the materialized heavy
  /// partition of key-probed join/distinct state. 0 disables wrapping
  /// entirely (the differential oracle path); < 0 means "auto": resolve
  /// from the `UPA_HEAVY_THRESHOLD` environment variable at
  /// BuildPipeline() time, defaulting to disabled. The cost model treats
  /// any value <= 0 as disabled and never consults the environment, so
  /// EXPLAIN output is stable across env configurations.
  int heavy_threshold = -1;
  /// Top-K bound on the heavy set of each wrapped buffer.
  int heavy_max_keys = 64;
  /// Resident-key bound of each buffer's frequency sketch.
  int heavy_tracker_capacity = 256;
};

/// Compiles the annotated logical plan into an executable pipeline for the
/// given execution strategy. The plan must have been through
/// AnnotatePatterns() and ValidatePlan(). Stream ids of kStream leaves are
/// bound to the pipeline's window ingress nodes, and relation ids to the
/// corresponding join's port 1, so the ReplayTrace driver can feed events
/// by stream id directly.
///
/// NT-mode restriction: plans containing NRR joins are rejected (an NRR
/// join cannot process the negative tuples that NT windows emit,
/// Section 5.4.2); run such plans under kDirect or kUpa.
std::unique_ptr<Pipeline> BuildPipeline(const PlanNode& plan, ExecMode mode,
                                        const PlannerOptions& options = {});

/// Replication hook: a (plan, mode, options) triple from which any number
/// of identical Pipeline instances can be stamped out. The engine runtime
/// builds one replica per shard; each replica owns private operator state
/// and a private view, so replicas are safe to drive from distinct
/// threads. `plan` must outlive the factory.
class PipelineFactory {
 public:
  PipelineFactory(const PlanNode* plan, ExecMode mode,
                  const PlannerOptions& options)
      : plan_(plan), mode_(mode), options_(options) {}

  std::unique_ptr<Pipeline> Replicate() const {
    return BuildPipeline(*plan_, mode_, options_);
  }

  const PlanNode& plan() const { return *plan_; }
  ExecMode mode() const { return mode_; }
  const PlannerOptions& options() const { return options_; }

 private:
  const PlanNode* plan_;
  ExecMode mode_;
  PlannerOptions options_;
};

/// Returns the attribute (column of the root output schema) that serves as
/// the key of hash-maintained result views: the join/negation/distinct key
/// of the root-most keyed operator, or column 0.
int RootKeyColumn(const PlanNode& plan);

/// Largest time-window size appearing in the subtree: the expiration-time
/// spread that partitioned buffers above it must cover.
Time MaxWindowSpan(const PlanNode& plan);

/// How far back a shard's ingest log must reach so that replaying it into
/// a fresh replica reproduces the lost operator state exactly. For purely
/// time-windowed plans this is the largest window span: anything older
/// has expired out of every buffer (the paper's expiration semantics) and
/// cannot influence results. Plans with relations, count windows, or
/// streams consumed without a window keep state of unbounded age, so the
/// horizon is kNeverExpires (the log is never pruned).
Time RecoveryHorizon(const PlanNode& plan);

/// Per-source refinement of RecoveryHorizon(): for every stream/relation
/// id appearing as a leaf of `plan`, the oldest ingest age (relative to
/// the current clock) that can still influence the plan's state. A stream
/// consumed through time windows is bounded by the largest such window on
/// any of its consumption paths -- older tuples have expired out of every
/// buffer fed by that leaf (the paper's update-pattern expiration
/// semantics, Sections 4-5). Relations, count-window inputs, and streams
/// consumed without a window get kNeverExpires. The durability layer uses
/// this map to truncate per-shard checkpoint state per source, which is
/// strictly tighter than the plan-wide maximum when windows differ across
/// sources (e.g. a 4000-unit join input next to a 250-unit one).
std::map<int, Time> StreamRecoveryHorizons(const PlanNode& plan);

/// True if the subtree contains a negation (used by the hybrid strategy
/// and by the optimizer's heuristics).
bool ContainsNegation(const PlanNode& plan);

}  // namespace upa

#endif  // UPA_CORE_PHYSICAL_PLANNER_H_
