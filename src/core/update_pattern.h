#ifndef UPA_CORE_UPDATE_PATTERN_H_
#define UPA_CORE_UPDATE_PATTERN_H_

#include <string>

namespace upa {

/// The paper's classification of continuous-query update patterns
/// (Section 3.1). Ordered by increasing complexity, which is what the
/// propagation rules of Section 5.2 combine over.
enum class UpdatePattern {
  /// Append-only output; no deletions ever (stateless operators over
  /// infinite streams).
  kMonotonic = 0,
  /// Weakest non-monotonic (WKS): results expire in the order they were
  /// generated (FIFO). Projection/selection over a single window,
  /// merge-union of windows.
  kWeakest = 1,
  /// Weak non-monotonic (WK): expiration order differs from generation
  /// order, but every result's expiration time is known when it is
  /// produced (the exp timestamp) -- no negative tuples needed. Join,
  /// duplicate elimination, group-by.
  kWeak = 2,
  /// Strict non-monotonic (STR): some results expire at unpredictable
  /// times and deletions must be signalled with negative tuples. Negation,
  /// joins with retroactive relations.
  kStrict = 3,
};

/// Short label: "MONO", "WKS", "WK", "STR" (the paper's abbreviations).
std::string PatternName(UpdatePattern p);

/// The more complex of two patterns (Rule 2's combination for binary
/// weakest non-monotonic operators).
UpdatePattern MaxPattern(UpdatePattern a, UpdatePattern b);

}  // namespace upa

#endif  // UPA_CORE_UPDATE_PATTERN_H_
