#ifndef UPA_CORE_UPDATE_PATTERN_H_
#define UPA_CORE_UPDATE_PATTERN_H_

#include <string>

namespace upa {

/// The paper's classification of continuous-query update patterns
/// (§3.1 of PAPER.md's source; see PAPER.md "What the paper
/// contributes", item 1). Ordered by increasing complexity, which is
/// what the §5.2 propagation rules combine over: every operator's
/// output pattern is derived bottom-up from its inputs' patterns, and
/// the derived pattern decides the physical machinery downstream
/// operators need (exp timestamps for WK, negative tuples for STR).
///
/// The five propagation rules, as implemented in AnnotatePatterns()
/// (core/logical_plan.cc):
///
///  - Rule 1 — unary pattern-preserving operators (selection,
///    projection without duplicate elimination, non-retroactive
///    relation join): output pattern = input pattern.
///  - Rule 2 — merge-union: arrival order is preserved per input, so
///    the output pattern is the more complex of the two inputs
///    (MaxPattern); two WKS inputs merge into WKS only because FIFO
///    expiration survives an order-preserving merge.
///  - Rule 3 — sliding window over a monotonic source yields WKS;
///    binary combining operators (join, intersection) over windowed
///    inputs yield at least WK, because a result's expiration is the
///    min of its constituents' — known at generation time but not FIFO.
///  - Rule 4 — group-by/aggregation always yields WK: a new aggregate
///    value replaces the group's previous one at a predictable point.
///  - Rule 5 — negation and retroactive-relation joins yield STR:
///    results can be invalidated by later arrivals at unpredictable
///    times, so deletions must be signalled with negative tuples.
enum class UpdatePattern {
  /// Append-only output; no deletions ever (stateless operators over
  /// infinite streams).
  kMonotonic = 0,
  /// Weakest non-monotonic (WKS): results expire in the order they were
  /// generated (FIFO). Projection/selection over a single window,
  /// merge-union of windows.
  kWeakest = 1,
  /// Weak non-monotonic (WK): expiration order differs from generation
  /// order, but every result's expiration time is known when it is
  /// produced (the exp timestamp) -- no negative tuples needed. Join,
  /// duplicate elimination, group-by.
  kWeak = 2,
  /// Strict non-monotonic (STR): some results expire at unpredictable
  /// times and deletions must be signalled with negative tuples. Negation,
  /// joins with retroactive relations.
  kStrict = 3,
};

/// Short label: "MONO", "WKS", "WK", "STR" (the paper's abbreviations).
std::string PatternName(UpdatePattern p);

/// The more complex of two patterns — the lattice join used by Rules 2
/// and 3 for binary operators. Well-defined because the enum is ordered
/// MONO < WKS < WK < STR (§3.1's complexity ordering): a downstream
/// operator able to handle pattern P handles every pattern below it.
UpdatePattern MaxPattern(UpdatePattern a, UpdatePattern b);

}  // namespace upa

#endif  // UPA_CORE_UPDATE_PATTERN_H_
