#include "core/physical_planner.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/macros.h"
#include "exec/view.h"
#include "ops/distinct.h"
#include "ops/groupby.h"
#include "ops/intersect.h"
#include "ops/join.h"
#include "ops/negation.h"
#include "ops/relation_join.h"
#include "ops/stateless.h"
#include "ops/window.h"
#include "state/hash_buffer.h"
#include "state/heavy_light_buffer.h"
#include "state/indexed_buffer.h"
#include "state/list_buffer.h"
#include "state/partitioned_buffer.h"

namespace upa {

std::string ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kNegativeTuple:
      return "NT";
    case ExecMode::kDirect:
      return "DIRECT";
    case ExecMode::kUpa:
      return "UPA";
  }
  return "?";
}

int RootKeyColumn(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanOpKind::kJoin:
    case PlanOpKind::kNegate:
      return plan.left_col;
    case PlanOpKind::kIntersect:
      return 0;
    case PlanOpKind::kDistinct:
      return plan.cols[0];
    case PlanOpKind::kSelect:
      return RootKeyColumn(plan.child(0));
    default:
      return 0;
  }
}

Time MaxWindowSpan(const PlanNode& plan) {
  Time span = plan.kind == PlanOpKind::kWindow ? plan.window_size : 0;
  for (const auto& c : plan.children) {
    span = std::max(span, MaxWindowSpan(*c));
  }
  return span;
}

bool ContainsNegation(const PlanNode& plan) {
  if (plan.kind == PlanOpKind::kNegate) return true;
  for (const auto& c : plan.children) {
    if (ContainsNegation(*c)) return true;
  }
  return false;
}

namespace {

/// True if the subtree keeps state whose age a time horizon cannot bound:
/// relation leaves (never expire), count windows (retain the last N
/// regardless of age), and stream leaves not consumed through a window.
bool HasUnboundedLineage(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanOpKind::kRelation:
    case PlanOpKind::kCountWindow:
      return true;
    case PlanOpKind::kWindow:
      return false;  // Bounds its stream child to window_size.
    case PlanOpKind::kStream:
      return true;  // Reached only when not consumed through a window.
    default:
      for (const auto& c : plan.children) {
        if (HasUnboundedLineage(*c)) return true;
      }
      return false;
  }
}

}  // namespace

Time RecoveryHorizon(const PlanNode& plan) {
  if (HasUnboundedLineage(plan)) return kNeverExpires;
  const Time span = MaxWindowSpan(plan);
  return span > 0 ? span : kNeverExpires;
}

namespace {

/// `enclosing` is the largest time window on the path above (0 = none);
/// `unbounded` is set below a count window, whose eviction is arrival-
/// count based and therefore unbounded in time.
void CollectStreamHorizons(const PlanNode& plan, Time enclosing,
                           bool unbounded, std::map<int, Time>* out) {
  switch (plan.kind) {
    case PlanOpKind::kStream:
    case PlanOpKind::kRelation: {
      // Relations never expire; a stream leaf with no window above keeps
      // unbounded state too (same cases as HasUnboundedLineage).
      const bool bounded = plan.kind == PlanOpKind::kStream && !unbounded &&
                           enclosing > 0;
      const Time h = bounded ? enclosing : kNeverExpires;
      auto [it, inserted] = out->emplace(plan.stream_id, h);
      // The same source consumed on several paths (self-join) must honor
      // its loosest requirement.
      if (!inserted) it->second = std::max(it->second, h);
      return;
    }
    case PlanOpKind::kWindow:
      for (const auto& c : plan.children) {
        CollectStreamHorizons(*c, std::max(enclosing, plan.window_size),
                              unbounded, out);
      }
      return;
    case PlanOpKind::kCountWindow:
      for (const auto& c : plan.children) {
        CollectStreamHorizons(*c, enclosing, /*unbounded=*/true, out);
      }
      return;
    default:
      for (const auto& c : plan.children) {
        CollectStreamHorizons(*c, enclosing, unbounded, out);
      }
      return;
  }
}

}  // namespace

std::map<int, Time> StreamRecoveryHorizons(const PlanNode& plan) {
  std::map<int, Time> out;
  CollectStreamHorizons(plan, /*enclosing=*/0, /*unbounded=*/false, &out);
  return out;
}

namespace {

/// Per-subtree build style. Under UPA's hybrid strategy different regions
/// of one plan use different styles (Section 5.4.3: direct below the
/// negation, negative tuples above it).
enum class Style { kDirect, kNegative, kPattern };

struct BuildResult {
  int node = -1;
  UpdatePattern pattern = UpdatePattern::kMonotonic;
  Time span = 0;  // Expiration-time spread of tuples on this edge.
  /// True when every deletion on this edge is signalled by a negative
  /// tuple, so consumers need no time-based expiration.
  bool negatives_complete = false;
};

class PlannerImpl {
 public:
  PlannerImpl(ExecMode mode, const PlannerOptions& opts)
      : mode_(mode), opts_(opts) {}

  std::unique_ptr<Pipeline> Build(const PlanNode& plan) {
    pipeline_ = std::make_unique<Pipeline>();
    AssignStyles(plan);
    const BuildResult root = BuildNode(plan);
    pipeline_->SetView(MakeView(plan, root));
    return std::move(pipeline_);
  }

 private:
  Style StyleOf(const PlanNode& n) const {
    auto it = styles_.find(&n);
    UPA_CHECK(it != styles_.end());
    return it->second;
  }

  void MarkSubtree(const PlanNode& n, Style style) {
    styles_[&n] = style;
    for (const auto& c : n.children) MarkSubtree(*c, style);
  }

  /// Finds the topmost negation (preorder) and returns the root-to-it
  /// path, or an empty path if none.
  static bool FindNegationPath(const PlanNode& n,
                               std::vector<const PlanNode*>* path) {
    path->push_back(&n);
    if (n.kind == PlanOpKind::kNegate) return true;
    for (const auto& c : n.children) {
      if (FindNegationPath(*c, path)) return true;
    }
    path->pop_back();
    return false;
  }

  void AssignStyles(const PlanNode& plan) {
    switch (mode_) {
      case ExecMode::kDirect:
        MarkSubtree(plan, Style::kDirect);
        return;
      case ExecMode::kNegativeTuple:
        MarkSubtree(plan, Style::kNegative);
        return;
      case ExecMode::kUpa:
        break;
    }
    MarkSubtree(plan, Style::kPattern);
    if (!ContainsNegation(plan)) return;
    const bool frequent =
        opts_.str_strategy == StrStrategy::kNegativeTuples ||
        (opts_.str_strategy == StrStrategy::kAuto &&
         opts_.premature_frequency > kPrematureFrequencyThreshold);
    if (!frequent) return;
    // Hybrid execution (Section 5.4.3): everything strictly above the
    // topmost negation -- including the sibling subtrees feeding those
    // ancestors -- runs under the negative tuple approach; the negation
    // itself emits a negative tuple for every removal from its answer.
    std::vector<const PlanNode*> path;
    const bool found = FindNegationPath(plan, &path);
    UPA_CHECK(found);
    hybrid_negation_ = path.back();
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      styles_[path[i]] = Style::kNegative;
      for (const auto& c : path[i]->children) {
        if (c.get() != path[i + 1]) MarkSubtree(*c, Style::kNegative);
      }
    }
  }

  Time LazyInterval(Time span) const {
    return std::max<Time>(
        1, static_cast<Time>(static_cast<double>(span) * opts_.lazy_fraction));
  }

  /// Builds a state buffer for an operator input with the given edge
  /// properties. `key_col` is the operator's key attribute on that input
  /// (hash key under negative-tuple maintenance). `probed` marks state
  /// that the operator probes by key on every arrival (join/intersection
  /// inputs), eligible for the IndexedBuffer extension. `heavy` marks
  /// state probed by equality on `key_col`, eligible for heavy-light
  /// partitioning (DESIGN.md Section 16) when `heavy_threshold` > 0; kept
  /// separate from `probed` so the E9 IndexedBuffer ablation is
  /// unaffected by the skew knob.
  std::unique_ptr<StateBuffer> MakeBuffer(Style style, UpdatePattern pattern,
                                          bool negatives_complete, int key_col,
                                          Time span, bool allow_lazy,
                                          bool probed = false,
                                          bool heavy = false) const {
    const Time effective_span = std::max<Time>(1, span);
    bool heavy_eligible =
        heavy && opts_.heavy_threshold > 0 && key_col >= 0;
    auto order = HeavyLightBuffer::ProbeOrder::kArrival;
    Time block_span = effective_span;
    std::unique_ptr<StateBuffer> buf;
    if (style == Style::kNegative || negatives_complete) {
      // Negative-tuple maintenance: the hash index locates the tuples that
      // arriving negatives delete; probing still scans, matching the
      // Section 5.4.1 cost accounting (see HashBuffer). Never lazy:
      // removal is deletion-driven. A key-restricted probe scans one
      // bucket in arrival order, so heavy wrapping uses kArrival.
      buf = std::make_unique<HashBuffer>(key_col < 0 ? 0 : key_col,
                                         opts_.hash_buckets,
                                         /*scan_probes=*/true);
      return MaybeWrapHeavy(std::move(buf), heavy_eligible, key_col, order,
                            block_span, effective_span);
    }
    if (style == Style::kDirect) {
      buf = std::make_unique<ListBuffer>();
    } else if (probed && opts_.index_probed_state && key_col >= 0) {
      buf = std::make_unique<IndexedBuffer>(key_col, opts_.num_partitions,
                                            effective_span,
                                            opts_.index_buckets);
      heavy_eligible = false;  // Already key-indexed; nothing to gain.
    } else {
      switch (pattern) {
        case UpdatePattern::kMonotonic:
        case UpdatePattern::kWeakest:
          buf = std::make_unique<FifoBuffer>();
          break;
        case UpdatePattern::kWeak:
        case UpdatePattern::kStrict: {
          auto part = std::make_unique<PartitionedBuffer>(
              opts_.num_partitions, effective_span);
          block_span = part->block_span();
          // Eager partitions enumerate (block, exp, arrival); lazy ones
          // keep per-block insertion order.
          order = allow_lazy
                      ? HeavyLightBuffer::ProbeOrder::kPartitionArrival
                      : HeavyLightBuffer::ProbeOrder::kPartitionExp;
          buf = std::move(part);
          break;
        }
      }
    }
    if (allow_lazy) buf->SetLazy(LazyInterval(effective_span));
    return MaybeWrapHeavy(std::move(buf), heavy_eligible, key_col, order,
                          block_span, effective_span);
  }

  /// Wraps `buf` in a HeavyLightBuffer replicating its enumeration order.
  /// The repartition epoch is a quarter of the edge's window span, so
  /// promotion reacts within a window while staying far coarser than the
  /// per-tick barrier cadence.
  std::unique_ptr<StateBuffer> MaybeWrapHeavy(
      std::unique_ptr<StateBuffer> buf, bool eligible, int key_col,
      HeavyLightBuffer::ProbeOrder order, Time block_span,
      Time effective_span) const {
    if (!eligible) return buf;
    HeavyLightBuffer::Options hl;
    hl.threshold = static_cast<uint64_t>(opts_.heavy_threshold);
    hl.max_heavy_keys = static_cast<size_t>(std::max(1, opts_.heavy_max_keys));
    hl.tracker_capacity =
        static_cast<size_t>(std::max(1, opts_.heavy_tracker_capacity));
    hl.epoch = std::max<Time>(1, effective_span / 4);
    return std::make_unique<HeavyLightBuffer>(std::move(buf), key_col, order,
                                              block_span,
                                              opts_.num_partitions, hl);
  }

  BuildResult BuildNode(const PlanNode& n) {
    const Style style = StyleOf(n);
    switch (n.kind) {
      case PlanOpKind::kStream: {
        BuildResult r;
        r.node = pipeline_->AddOperator(
            std::make_unique<TimeWindowOp>(n.schema, kNeverExpires,
                                           /*materialize=*/false),
            {});
        pipeline_->BindStream(n.stream_id, r.node, 0);
        r.pattern = UpdatePattern::kMonotonic;
        r.span = 1;
        r.negatives_complete = false;
        return r;
      }
      case PlanOpKind::kWindow: {
        BuildResult r;
        const bool materialize = style == Style::kNegative;
        r.node = pipeline_->AddOperator(
            std::make_unique<TimeWindowOp>(n.schema, n.window_size,
                                           materialize),
            {});
        pipeline_->BindStream(n.child(0).stream_id, r.node, 0);
        r.pattern = UpdatePattern::kWeakest;
        r.span = n.window_size;
        r.negatives_complete = materialize;
        return r;
      }
      case PlanOpKind::kCountWindow: {
        BuildResult r;
        r.node = pipeline_->AddOperator(
            std::make_unique<CountWindowOp>(n.schema, n.count), {});
        pipeline_->BindStream(n.child(0).stream_id, r.node, 0);
        r.pattern = UpdatePattern::kStrict;
        r.span = static_cast<Time>(n.count);
        r.negatives_complete = true;
        return r;
      }
      case PlanOpKind::kSelect: {
        BuildResult r = BuildNode(n.child(0));
        r.node = pipeline_->AddOperator(
            std::make_unique<SelectOp>(n.schema, n.preds), {r.node});
        return r;
      }
      case PlanOpKind::kProject: {
        BuildResult r = BuildNode(n.child(0));
        r.node = pipeline_->AddOperator(
            std::make_unique<ProjectOp>(n.child(0).schema, n.cols), {r.node});
        return r;
      }
      case PlanOpKind::kUnion: {
        const BuildResult l = BuildNode(n.child(0));
        const BuildResult rr = BuildNode(n.child(1));
        UPA_CHECK(l.negatives_complete == rr.negatives_complete);
        BuildResult r;
        r.node = pipeline_->AddOperator(std::make_unique<UnionOp>(n.schema),
                                        {l.node, rr.node});
        r.pattern = n.pattern;
        r.span = std::max(l.span, rr.span);
        r.negatives_complete = l.negatives_complete;
        return r;
      }
      case PlanOpKind::kJoin:
        return BuildJoin(n, style);
      case PlanOpKind::kIntersect: {
        const BuildResult l = BuildNode(n.child(0));
        const BuildResult rr = BuildNode(n.child(1));
        UPA_CHECK(l.negatives_complete == rr.negatives_complete);
        const bool complete = l.negatives_complete;
        BuildResult r;
        r.node = pipeline_->AddOperator(
            std::make_unique<IntersectOp>(
                n.schema,
                MakeBuffer(style, l.pattern, complete, 0, l.span,
                           /*allow_lazy=*/!complete),
                MakeBuffer(style, rr.pattern, complete, 0, rr.span,
                           /*allow_lazy=*/!complete),
                /*time_expiration=*/!complete),
            {l.node, rr.node});
        r.pattern = n.pattern;
        r.span = std::max(l.span, rr.span);
        r.negatives_complete = complete;
        return r;
      }
      case PlanOpKind::kDistinct:
        return BuildDistinct(n, style);
      case PlanOpKind::kGroupBy: {
        const BuildResult c = BuildNode(n.child(0));
        const int key = n.group_col >= 0 ? n.group_col : 0;
        BuildResult r;
        r.node = pipeline_->AddOperator(
            std::make_unique<GroupByOp>(
                n.child(0).schema, n.group_col, n.agg, n.agg_col,
                MakeBuffer(style, c.pattern, c.negatives_complete, key, c.span,
                           /*allow_lazy=*/false),
                /*time_expiration=*/!c.negatives_complete),
            {c.node});
        r.pattern = n.pattern;
        r.span = c.span;
        r.negatives_complete = false;  // Replace semantics, root-only.
        return r;
      }
      case PlanOpKind::kNegate: {
        const BuildResult l = BuildNode(n.child(0));
        const BuildResult rr = BuildNode(n.child(1));
        UPA_CHECK(l.negatives_complete == rr.negatives_complete);
        const bool complete = l.negatives_complete;
        const bool emit_expiration_negatives =
            style == Style::kNegative || &n == hybrid_negation_;
        BuildResult r;
        r.node = pipeline_->AddOperator(
            std::make_unique<NegationOp>(
                n.schema, n.left_col, n.right_col,
                MakeBuffer(style, l.pattern, complete, n.left_col, l.span,
                           /*allow_lazy=*/false),
                MakeBuffer(style, rr.pattern, complete, n.right_col, rr.span,
                           /*allow_lazy=*/false),
                /*time_expiration=*/!complete, emit_expiration_negatives),
            {l.node, rr.node});
        r.pattern = n.pattern;
        r.span = std::max(l.span, rr.span);
        r.negatives_complete = emit_expiration_negatives;
        return r;
      }
      case PlanOpKind::kRelation:
        UPA_FATAL("relation leaves are built by their parent join");
    }
    UPA_FATAL("unhandled plan node kind");
  }

  BuildResult BuildJoin(const PlanNode& n, Style style) {
    const PlanNode& rnode = n.child(1);
    if (rnode.kind != PlanOpKind::kRelation) {
      const BuildResult l = BuildNode(n.child(0));
      const BuildResult rr = BuildNode(n.child(1));
      UPA_CHECK(l.negatives_complete == rr.negatives_complete);
      const bool complete = l.negatives_complete;
      BuildResult r;
      r.node = pipeline_->AddOperator(
          std::make_unique<JoinOp>(
              n.child(0).schema, n.child(1).schema, n.left_col, n.right_col,
              MakeBuffer(style, l.pattern, complete, n.left_col, l.span,
                         /*allow_lazy=*/!complete, /*probed=*/true,
                         /*heavy=*/true),
              MakeBuffer(style, rr.pattern, complete, n.right_col, rr.span,
                         /*allow_lazy=*/!complete, /*probed=*/true,
                         /*heavy=*/true),
              /*time_expiration=*/!complete),
          {l.node, rr.node});
      r.pattern = n.pattern;
      r.span = std::max(l.span, rr.span);
      r.negatives_complete = complete;
      return r;
    }
    const BuildResult l = BuildNode(n.child(0));
    // The relation rows never expire; a hash table keyed on the join
    // attribute is the natural store except under the scan-everything
    // DIRECT baseline.
    std::unique_ptr<StateBuffer> table;
    if (style == Style::kDirect) {
      table = std::make_unique<ListBuffer>();
    } else {
      table = std::make_unique<HashBuffer>(n.right_col, opts_.hash_buckets);
    }
    BuildResult r;
    if (!rnode.retroactive) {
      // Section 5.4.2: the NRR join cannot process negative tuples.
      UPA_CHECK(!l.negatives_complete);
      r.node = pipeline_->AddOperator(
          std::make_unique<NrrJoinOp>(n.child(0).schema, rnode.schema,
                                      n.left_col, n.right_col,
                                      std::move(table)),
          {l.node});
      r.negatives_complete = false;
    } else {
      r.node = pipeline_->AddOperator(
          std::make_unique<RelJoinOp>(
              n.child(0).schema, rnode.schema, n.left_col, n.right_col,
              MakeBuffer(style, l.pattern, l.negatives_complete, n.left_col,
                         l.span, /*allow_lazy=*/!l.negatives_complete,
                         /*probed=*/false, /*heavy=*/true),
              std::move(table),
              /*time_expiration=*/!l.negatives_complete),
          {l.node});
      r.negatives_complete = l.negatives_complete;
    }
    pipeline_->BindStream(rnode.stream_id, r.node, 1);
    r.pattern = n.pattern;
    r.span = l.span;
    return r;
  }

  BuildResult BuildDistinct(const PlanNode& n, Style style) {
    const BuildResult c = BuildNode(n.child(0));
    const int key0 = n.cols[0];
    BuildResult r;
    const bool use_delta =
        style == Style::kPattern && !c.negatives_complete &&
        c.pattern != UpdatePattern::kStrict;
    if (use_delta) {
      // The delta operator's own output expires out of generation order
      // (weak non-monotonic), so its output state is partitioned. Every
      // arrival probes it by the (single-column) distinct key for the
      // duplicate check, so hot keys dominate the probe mass and the
      // output is heavy-light eligible.
      r.node = pipeline_->AddOperator(
          std::make_unique<DeltaDistinctOp>(
              n.schema, n.cols,
              MakeBuffer(style, UpdatePattern::kWeak, false, key0, c.span,
                         /*allow_lazy=*/false, /*probed=*/false,
                         /*heavy=*/n.cols.size() == 1)),
          {c.node});
      r.negatives_complete = false;
    } else {
      r.node = pipeline_->AddOperator(
          std::make_unique<DistinctOp>(
              n.schema, n.cols,
              MakeBuffer(style, c.pattern, c.negatives_complete, key0, c.span,
                         /*allow_lazy=*/!c.negatives_complete,
                         // Replacement lookups probe the input by the
                         // (single-column) distinct key; multi-column keys
                         // scan via ForEachLive and gain nothing.
                         /*probed=*/false, /*heavy=*/n.cols.size() == 1),
              // The output is probed per arrival (duplicate check), same
              // heavy-light eligibility as the delta operator's output.
              MakeBuffer(style, UpdatePattern::kWeak, c.negatives_complete,
                         key0, c.span, /*allow_lazy=*/false,
                         /*probed=*/false, /*heavy=*/n.cols.size() == 1),
              /*time_expiration=*/!c.negatives_complete),
          {c.node});
      r.negatives_complete = c.negatives_complete;
    }
    r.pattern = n.pattern;
    r.span = c.span;
    return r;
  }

  std::unique_ptr<ResultView> MakeView(const PlanNode& plan,
                                       const BuildResult& root) {
    if (plan.kind == PlanOpKind::kGroupBy) {
      return std::make_unique<GroupArrayView>();
    }
    const int key = RootKeyColumn(plan);
    if (root.negatives_complete) {
      // All deletions arrive as negative tuples: hash on the key attribute
      // (Sections 2.3.1 and 5.4.3).
      return std::make_unique<BufferView>(
          std::make_unique<HashBuffer>(key, opts_.hash_buckets),
          /*time_expiration=*/false);
    }
    const Time span = std::max<Time>(1, root.span);
    std::unique_ptr<StateBuffer> buf;
    switch (StyleOf(plan)) {
      case Style::kDirect:
        buf = std::make_unique<ListBuffer>();
        break;
      case Style::kNegative:
        buf = std::make_unique<HashBuffer>(key, opts_.hash_buckets);
        break;
      case Style::kPattern:
        switch (root.pattern) {
          case UpdatePattern::kMonotonic:
          case UpdatePattern::kWeakest:
            buf = std::make_unique<FifoBuffer>();
            break;
          case UpdatePattern::kWeak:
          case UpdatePattern::kStrict:
            buf = std::make_unique<PartitionedBuffer>(opts_.num_partitions,
                                                      span);
            break;
        }
        break;
    }
    return std::make_unique<BufferView>(std::move(buf),
                                        /*time_expiration=*/true);
  }

  ExecMode mode_;
  PlannerOptions opts_;
  std::unique_ptr<Pipeline> pipeline_;
  std::map<const PlanNode*, Style> styles_;
  const PlanNode* hybrid_negation_ = nullptr;
};

}  // namespace

std::unique_ptr<Pipeline> BuildPipeline(const PlanNode& plan, ExecMode mode,
                                        const PlannerOptions& options) {
  ValidatePlan(plan);
  PlannerOptions resolved = options;
  if (resolved.heavy_threshold < 0) {
    // "Auto": the UPA_HEAVY_THRESHOLD environment variable, mirroring the
    // UPA_BATCH tier-1 CI variant; absent (or unparsable) means disabled.
    const char* env = std::getenv("UPA_HEAVY_THRESHOLD");
    resolved.heavy_threshold = env != nullptr ? std::atoi(env) : 0;
    if (resolved.heavy_threshold < 0) resolved.heavy_threshold = 0;
  }
  PlannerImpl impl(mode, resolved);
  return impl.Build(plan);
}

}  // namespace upa
