#include "core/partition.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace upa {
namespace {

/// Records that `stream_id`'s base tuples must hash on `col`. Fails on a
/// conflict with an earlier constraint (one hash per stream: the engine
/// routes each arrival exactly once, so two bindings of one stream must
/// agree on the partition column).
bool Constrain(int stream_id, int col, std::map<int, int>* cols,
               std::string* reason) {
  auto [it, inserted] = cols->emplace(stream_id, col);
  if (!inserted && it->second != col) {
    *reason = "stream " + std::to_string(stream_id) +
              " would need partitioning on both column " +
              std::to_string(it->second) + " and column " +
              std::to_string(col);
    return false;
  }
  return true;
}

/// Walks `n` requiring its output to be partitioned on output column
/// `req` (-1 = unconstrained), translating the requirement through the
/// operator and imposing the keys of combining operators on the way down.
/// On success the per-stream base columns accumulate in `cols`.
///
/// The per-operator cases mirror which attribute keys each operator's
/// state (the same state the paper's §5.3 structures hold): join and
/// negation key on their comparison attribute, duplicate elimination on
/// its key vector, group-by on the group column; windows and selections
/// are per-tuple (any split works) and projections translate columns.
bool Assign(const PlanNode& n, int req, std::map<int, int>* cols,
            std::string* reason) {
  switch (n.kind) {
    case PlanOpKind::kStream:
    case PlanOpKind::kRelation:
      return req < 0 || Constrain(n.stream_id, req, cols, reason);
    case PlanOpKind::kWindow:
    case PlanOpKind::kSelect:
      // Schema-preserving, per-tuple: the requirement passes through.
      return Assign(n.child(0), req, cols, reason);
    case PlanOpKind::kCountWindow:
      *reason = "count-based window keeps the N globally most recent "
                "tuples; a per-shard replica would keep N per partition";
      return false;
    case PlanOpKind::kProject:
      return Assign(n.child(0),
                    req < 0 ? -1 : n.cols[static_cast<size_t>(req)], cols,
                    reason);
    case PlanOpKind::kUnion:
      // Positional: union requires identical schemas, so a key constraint
      // applies to the same column of both inputs.
      return Assign(n.child(0), req, cols, reason) &&
             Assign(n.child(1), req, cols, reason);
    case PlanOpKind::kJoin: {
      const int lw = n.child(0).schema.num_fields();
      // The only output columns co-partitioned with the join's state are
      // the two (equal-valued) join attributes.
      if (req >= 0 && req != n.left_col && req != lw + n.right_col) {
        *reason = "operator above a join requires a partition key (column " +
                  std::to_string(req) + ") other than the join attribute";
        return false;
      }
      return Assign(n.child(0), n.left_col, cols, reason) &&
             Assign(n.child(1), n.right_col, cols, reason);
    }
    case PlanOpKind::kIntersect: {
      // Pair-based intersection matches field-identical tuples, so any
      // common positional column co-locates matches; try them all when
      // unconstrained (a column choice may conflict deeper down).
      if (req >= 0) {
        return Assign(n.child(0), req, cols, reason) &&
               Assign(n.child(1), req, cols, reason);
      }
      std::string last_reason = "intersection over zero-column schema";
      for (int c = 0; c < n.schema.num_fields(); ++c) {
        std::map<int, int> attempt = *cols;
        if (Assign(n.child(0), c, &attempt, &last_reason) &&
            Assign(n.child(1), c, &attempt, &last_reason)) {
          *cols = std::move(attempt);
          return true;
        }
      }
      *reason = last_reason;
      return false;
    }
    case PlanOpKind::kDistinct: {
      // Tuples sharing the full key vector share every key column, so
      // partitioning on any one key column keeps duplicates together.
      if (req >= 0) {
        if (std::find(n.cols.begin(), n.cols.end(), req) == n.cols.end()) {
          *reason = "operator above duplicate elimination requires a "
                    "partition key (column " +
                    std::to_string(req) + ") outside the distinct key";
          return false;
        }
        return Assign(n.child(0), req, cols, reason);
      }
      std::string last_reason;
      for (int c : n.cols) {
        std::map<int, int> attempt = *cols;
        if (Assign(n.child(0), c, &attempt, &last_reason)) {
          *cols = std::move(attempt);
          return true;
        }
      }
      *reason = last_reason;
      return false;
    }
    case PlanOpKind::kGroupBy:
      if (n.group_col < 0) {
        *reason = "single-group aggregate spans every input tuple";
        return false;
      }
      // Group-by is a root operator (IsValidPlan); its output is keyed by
      // the group label in column 0.
      if (req > 0) {
        *reason = "operator above group-by requires a non-group column";
        return false;
      }
      return Assign(n.child(0), n.group_col, cols, reason);
    case PlanOpKind::kNegate:
      // Output schema is the left input's; only the negation attribute is
      // co-partitioned with the operator's per-value state.
      if (req >= 0 && req != n.left_col) {
        *reason = "operator above negation requires a partition key "
                  "(column " +
                  std::to_string(req) + ") other than the negation attribute";
        return false;
      }
      return Assign(n.child(0), n.left_col, cols, reason) &&
             Assign(n.child(1), n.right_col, cols, reason);
  }
  UPA_FATAL("unhandled plan kind");
}

void CollectStreams(const PlanNode& n, std::map<int, int>* cols) {
  if (n.kind == PlanOpKind::kStream || n.kind == PlanOpKind::kRelation) {
    // Unconstrained streams may hash on any attribute; fix column 0 so
    // every shard assignment is deterministic.
    cols->emplace(n.stream_id, 0);
  }
  for (const auto& c : n.children) CollectStreams(*c, cols);
}

}  // namespace

PartitionScheme AnalyzePartitionability(const PlanNode& root) {
  PartitionScheme scheme;
  std::map<int, int> cols;
  if (!Assign(root, -1, &cols, &scheme.reason)) {
    return scheme;  // partitionable == false, reason set.
  }
  CollectStreams(root, &cols);  // Default unconstrained streams to col 0.
  scheme.partitionable = true;
  scheme.stream_key_cols = std::move(cols);
  return scheme;
}

std::string PartitionScheme::ToString() const {
  if (!partitionable) return "single-shard (" + reason + ")";
  std::string out = "hash-partitioned on";
  for (const auto& [stream, col] : stream_key_cols) {
    out += " s" + std::to_string(stream) + ":c" + std::to_string(col);
  }
  return out;
}

}  // namespace upa
