#ifndef UPA_CORE_PARTITION_H_
#define UPA_CORE_PARTITION_H_

#include <map>
#include <string>

#include "core/logical_plan.h"

namespace upa {

/// Result of the partitionability analysis: whether an annotated plan can
/// be executed on several hash-partitioned shards, and if so which base
/// column of each input stream carries the partition key.
///
/// A plan is *partitionable* when splitting every input stream by a hash
/// of one attribute and running an independent pipeline replica per
/// partition yields shard views whose multiset union equals the
/// single-pipeline view at every time. The analysis mirrors the
/// key-based partitioning arguments of incremental view maintenance under
/// updates (see PAPERS.md: theta-joins under updates partition input
/// relations by join key): every stateful operator that *combines or
/// deduplicates tuples across arrivals by key* — join, negation,
/// intersection, duplicate elimination, group-by — forces its inputs to be
/// partitioned on that key, and the constraints must be satisfiable
/// simultaneously down to the stream leaves.
///
/// Tuples of streams left unconstrained (plans whose state is purely
/// per-tuple: selections, projections, time windows, unions of them) may
/// be split on any attribute; the analysis assigns column 0 so the
/// assignment is deterministic.
///
/// This analysis is an engine-level extension beyond the paper: the
/// paper's §5.3.2 partitioned data structures split *one* operator's
/// state by expiration time inside a single pipeline, whereas this
/// scheme shards the *whole pipeline* by key hash across threads
/// (DESIGN.md §9). The two compose — each shard replica still uses the
/// §5.3.2 structures internally. Update patterns interact with
/// shardability only through state: all four §3.1 patterns (MONO, WKS,
/// WK, STR) shard fine as long as every keyed combining operator sees
/// all tuples of a key in one shard; negative tuples (STR) route by the
/// same key as the positives they cancel.
///
/// Non-partitionable shapes (the engine falls back to one shard and
/// records `reason`):
///  - count-based windows: the "N most recent tuples" is a global
///    property; a per-shard count window keeps N tuples of its partition;
///  - single-group aggregates (GROUP BY absent): one group spans all keys;
///  - conflicting key constraints: e.g. duplicate elimination above a join
///    where no distinct key column coincides with the join key, or one
///    stream feeding two combining operators that disagree on the column.
struct PartitionScheme {
  /// True when the plan admits a multi-shard execution.
  bool partitionable = false;

  /// For every input stream (and relation update stream) of the plan: the
  /// column of the *base* tuple whose hash selects the shard. Populated
  /// only when `partitionable`.
  std::map<int, int> stream_key_cols;

  /// When !partitionable: why the plan fell back to a single shard.
  std::string reason;

  std::string ToString() const;
};

/// Analyzes `root` (annotated, validated) for shardability. Never fails:
/// a non-partitionable plan is reported with `partitionable == false`.
PartitionScheme AnalyzePartitionability(const PlanNode& root);

}  // namespace upa

#endif  // UPA_CORE_PARTITION_H_
