#include "core/logical_plan.h"

#include <utility>

#include "common/macros.h"

namespace upa {

namespace {

PlanPtr NewNode(PlanOpKind kind) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  return node;
}

bool IsRelationLeaf(const PlanNode& n) { return n.kind == PlanOpKind::kRelation; }

}  // namespace

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->schema = schema;
  copy->pattern = pattern;
  copy->stream_id = stream_id;
  copy->retroactive = retroactive;
  copy->window_size = window_size;
  copy->count = count;
  copy->preds = preds;
  copy->cols = cols;
  copy->left_col = left_col;
  copy->right_col = right_col;
  copy->group_col = group_col;
  copy->agg = agg;
  copy->agg_col = agg_col;
  copy->children.reserve(children.size());
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

namespace {

const char* KindName(PlanOpKind k) {
  switch (k) {
    case PlanOpKind::kStream:
      return "stream";
    case PlanOpKind::kRelation:
      return "relation";
    case PlanOpKind::kWindow:
      return "window";
    case PlanOpKind::kCountWindow:
      return "count-window";
    case PlanOpKind::kSelect:
      return "select";
    case PlanOpKind::kProject:
      return "project";
    case PlanOpKind::kUnion:
      return "union";
    case PlanOpKind::kJoin:
      return "join";
    case PlanOpKind::kIntersect:
      return "intersect";
    case PlanOpKind::kDistinct:
      return "distinct";
    case PlanOpKind::kGroupBy:
      return "group-by";
    case PlanOpKind::kNegate:
      return "negate";
  }
  return "?";
}

void Render(const PlanNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += KindName(n.kind);
  switch (n.kind) {
    case PlanOpKind::kStream:
      *out += " S" + std::to_string(n.stream_id);
      break;
    case PlanOpKind::kRelation:
      *out += std::string(n.retroactive ? " R" : " NRR") +
              std::to_string(n.stream_id);
      break;
    case PlanOpKind::kWindow:
      *out += " [" + std::to_string(n.window_size) + "]";
      break;
    case PlanOpKind::kCountWindow:
      *out += " [#" + std::to_string(n.count) + "]";
      break;
    case PlanOpKind::kSelect:
      for (const Predicate& p : n.preds) *out += " " + p.ToString();
      break;
    case PlanOpKind::kJoin:
      *out += " $" + std::to_string(n.left_col) + "=$" +
              std::to_string(n.right_col);
      break;
    case PlanOpKind::kNegate:
      *out += " $" + std::to_string(n.left_col) + " not-in $" +
              std::to_string(n.right_col);
      break;
    default:
      break;
  }
  *out += "   <" + PatternName(n.pattern) + ">\n";
  for (const auto& c : n.children) Render(*c, depth + 1, out);
}

}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

PlanPtr MakeStream(int stream_id, Schema schema) {
  UPA_CHECK(stream_id >= 0);
  PlanPtr n = NewNode(PlanOpKind::kStream);
  n->stream_id = stream_id;
  n->schema = std::move(schema);
  return n;
}

PlanPtr MakeRelation(int stream_id, Schema schema, bool retroactive) {
  UPA_CHECK(stream_id >= 0);
  PlanPtr n = NewNode(PlanOpKind::kRelation);
  n->stream_id = stream_id;
  n->schema = std::move(schema);
  n->retroactive = retroactive;
  return n;
}

PlanPtr MakeWindow(PlanPtr stream, Time window_size) {
  UPA_CHECK(stream != nullptr);
  UPA_CHECK(stream->kind == PlanOpKind::kStream);
  UPA_CHECK(window_size > 0);
  PlanPtr n = NewNode(PlanOpKind::kWindow);
  n->schema = stream->schema;
  n->window_size = window_size;
  n->children.push_back(std::move(stream));
  return n;
}

PlanPtr MakeCountWindow(PlanPtr stream, size_t count) {
  UPA_CHECK(stream != nullptr);
  UPA_CHECK(stream->kind == PlanOpKind::kStream);
  UPA_CHECK(count > 0);
  PlanPtr n = NewNode(PlanOpKind::kCountWindow);
  n->schema = stream->schema;
  n->count = count;
  n->children.push_back(std::move(stream));
  return n;
}

PlanPtr MakeSelect(PlanPtr child, std::vector<Predicate> preds) {
  UPA_CHECK(child != nullptr);
  for (const Predicate& p : preds) {
    UPA_CHECK(p.col >= 0 && p.col < child->schema.num_fields());
  }
  PlanPtr n = NewNode(PlanOpKind::kSelect);
  n->schema = child->schema;
  n->preds = std::move(preds);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeProject(PlanPtr child, std::vector<int> cols) {
  UPA_CHECK(child != nullptr);
  PlanPtr n = NewNode(PlanOpKind::kProject);
  n->schema = child->schema.Project(cols);
  n->cols = std::move(cols);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeUnion(PlanPtr left, PlanPtr right) {
  UPA_CHECK(left != nullptr && right != nullptr);
  UPA_CHECK(left->schema == right->schema);
  PlanPtr n = NewNode(PlanOpKind::kUnion);
  n->schema = left->schema;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, int left_col, int right_col) {
  UPA_CHECK(left != nullptr && right != nullptr);
  UPA_CHECK(!IsRelationLeaf(*left));  // Relations join on the right.
  UPA_CHECK(left_col >= 0 && left_col < left->schema.num_fields());
  UPA_CHECK(right_col >= 0 && right_col < right->schema.num_fields());
  PlanPtr n = NewNode(PlanOpKind::kJoin);
  n->schema = Schema::Concat(left->schema, right->schema);
  n->left_col = left_col;
  n->right_col = right_col;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr MakeIntersect(PlanPtr left, PlanPtr right) {
  UPA_CHECK(left != nullptr && right != nullptr);
  UPA_CHECK(left->schema == right->schema);
  UPA_CHECK(!IsRelationLeaf(*left) && !IsRelationLeaf(*right));
  PlanPtr n = NewNode(PlanOpKind::kIntersect);
  n->schema = left->schema;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr MakeDistinct(PlanPtr child, std::vector<int> key_cols) {
  UPA_CHECK(child != nullptr);
  UPA_CHECK(!key_cols.empty());
  for (int c : key_cols) UPA_CHECK(c >= 0 && c < child->schema.num_fields());
  PlanPtr n = NewNode(PlanOpKind::kDistinct);
  n->schema = child->schema;
  n->cols = std::move(key_cols);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeGroupBy(PlanPtr child, int group_col, AggKind agg, int agg_col) {
  UPA_CHECK(child != nullptr);
  UPA_CHECK(group_col >= -1 && group_col < child->schema.num_fields());
  if (agg != AggKind::kCount) {
    UPA_CHECK(agg_col >= 0 && agg_col < child->schema.num_fields());
  }
  PlanPtr n = NewNode(PlanOpKind::kGroupBy);
  // Output schema mirrors GroupByOp's (group, agg, count).
  {
    std::vector<Field> fields;
    fields.push_back(group_col >= 0 ? child->schema.field(group_col)
                                    : Field{"group", ValueType::kInt});
    fields.push_back(Field{AggName(agg), ValueType::kDouble});
    fields.push_back(Field{"count", ValueType::kInt});
    n->schema = Schema(std::move(fields));
  }
  n->group_col = group_col;
  n->agg = agg;
  n->agg_col = agg_col;
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeNegate(PlanPtr left, PlanPtr right, int left_col,
                   int right_col) {
  UPA_CHECK(left != nullptr && right != nullptr);
  UPA_CHECK(!IsRelationLeaf(*left) && !IsRelationLeaf(*right));
  UPA_CHECK(left_col >= 0 && left_col < left->schema.num_fields());
  UPA_CHECK(right_col >= 0 && right_col < right->schema.num_fields());
  UPA_CHECK(left->schema.field(left_col).type ==
            right->schema.field(right_col).type);
  PlanPtr n = NewNode(PlanOpKind::kNegate);
  n->schema = left->schema;
  n->left_col = left_col;
  n->right_col = right_col;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

namespace {

/// True when every tuple of the subtree's output carries the same
/// arrival-to-expiration offset (a single window size end to end), which
/// is what makes generation order equal expiration order. `*span` is the
/// common offset (kNeverExpires for unwindowed streams/relations).
bool UniformExpProfile(const PlanNode& n, Time* span) {
  switch (n.kind) {
    case PlanOpKind::kStream:
    case PlanOpKind::kRelation:
      *span = kNeverExpires;
      return true;
    case PlanOpKind::kWindow:
      *span = n.window_size;
      return true;
    case PlanOpKind::kCountWindow:
      return false;  // Expiration times are unknown at arrival.
    case PlanOpKind::kSelect:
    case PlanOpKind::kProject:
    case PlanOpKind::kDistinct:
      return UniformExpProfile(n.child(0), span);
    case PlanOpKind::kUnion: {
      Time l = 0;
      Time r = 0;
      if (!UniformExpProfile(n.child(0), &l) ||
          !UniformExpProfile(n.child(1), &r)) {
        return false;
      }
      *span = l;
      return l == r;
    }
    default:
      // Joins/negation/group-by re-time their outputs.
      return false;
  }
}

}  // namespace

void AnnotatePatterns(PlanNode* root) {
  UPA_CHECK(root != nullptr);
  for (auto& c : root->children) AnnotatePatterns(c.get());
  switch (root->kind) {
    case PlanOpKind::kStream:
      root->pattern = UpdatePattern::kMonotonic;
      break;
    case PlanOpKind::kRelation:
      // Patterns describe *query outputs*; for a table leaf the value is
      // only used through the join rules (Rule 1 for NRR, Rule 5 for R).
      root->pattern = root->retroactive ? UpdatePattern::kStrict
                                        : UpdatePattern::kMonotonic;
      break;
    case PlanOpKind::kWindow:
      // Individual windows expire in FIFO order (Section 3.1).
      root->pattern = UpdatePattern::kWeakest;
      break;
    case PlanOpKind::kCountWindow:
      // Extension: evictions are unpredictable from timestamps alone and
      // are signalled with negative tuples, so downstream processing sees
      // strict non-monotonic input.
      root->pattern = UpdatePattern::kStrict;
      break;
    case PlanOpKind::kSelect:
    case PlanOpKind::kProject:
      // Rule 1: unary weakest non-monotonic operators preserve the input
      // pattern (and stay monotonic over infinite streams).
      root->pattern = root->child(0).pattern;
      break;
    case PlanOpKind::kUnion: {
      // Rule 2: merge-union does not reorder, so the output pattern is
      // the more complex of the inputs. Refinement over the paper's
      // statement: two weakest inputs only yield a weakest (FIFO) output
      // when they expire on the same schedule -- a union of windows of
      // *different* sizes interleaves expirations out of generation
      // order, which is weak non-monotonic (expirations remain fully
      // predictable from the exp timestamps).
      root->pattern =
          MaxPattern(root->child(0).pattern, root->child(1).pattern);
      if (root->pattern == UpdatePattern::kWeakest) {
        Time span = 0;
        if (!UniformExpProfile(*root, &span)) {
          root->pattern = UpdatePattern::kWeak;
        }
      }
      break;
    }
    case PlanOpKind::kJoin: {
      const PlanNode& right = root->child(1);
      if (right.kind == PlanOpKind::kRelation) {
        if (right.retroactive) {
          // Rule 5: R-join output is always STR -- table updates force
          // unpredictable insertions into and deletions from the result.
          root->pattern = UpdatePattern::kStrict;
        } else {
          // Rule 1: the NRR-join preserves the streaming input's pattern
          // (monotonic over a stream, WKS over a window, ...).
          root->pattern = root->child(0).pattern;
        }
        break;
      }
      // Rule 3 (plus the Section 3.1 observation that a join of two
      // unwindowed streams is monotonic, if impractical).
      const UpdatePattern combined =
          MaxPattern(root->child(0).pattern, right.pattern);
      root->pattern = combined == UpdatePattern::kMonotonic
                          ? UpdatePattern::kMonotonic
                      : combined == UpdatePattern::kStrict
                          ? UpdatePattern::kStrict
                          : UpdatePattern::kWeak;
      break;
    }
    case PlanOpKind::kIntersect: {
      const UpdatePattern combined =
          MaxPattern(root->child(0).pattern, root->child(1).pattern);
      root->pattern = combined == UpdatePattern::kMonotonic
                          ? UpdatePattern::kMonotonic
                      : combined == UpdatePattern::kStrict
                          ? UpdatePattern::kStrict
                          : UpdatePattern::kWeak;
      break;
    }
    case PlanOpKind::kDistinct: {
      // Rule 3; over an infinite stream duplicate elimination only ever
      // appends (first occurrence wins), hence monotonic.
      const UpdatePattern in = root->child(0).pattern;
      root->pattern = in == UpdatePattern::kMonotonic
                          ? UpdatePattern::kMonotonic
                      : in == UpdatePattern::kStrict ? UpdatePattern::kStrict
                                                     : UpdatePattern::kWeak;
      break;
    }
    case PlanOpKind::kGroupBy:
      // Rule 4: group-by output is always WK -- new aggregates replace old
      // ones without negative tuples, even for STR input.
      root->pattern = UpdatePattern::kWeak;
      break;
    case PlanOpKind::kNegate:
      // Rule 5.
      root->pattern = UpdatePattern::kStrict;
      break;
  }
}

namespace {

bool ValidateNode(const PlanNode& n, bool is_root) {
  if (n.kind == PlanOpKind::kRelation && is_root) return false;
  // Replace-semantics output feeds the group array view directly.
  if (n.kind == PlanOpKind::kGroupBy && !is_root) return false;
  if (n.kind == PlanOpKind::kJoin &&
      n.child(1).kind == PlanOpKind::kRelation) {
    // Section 5.4.2: relation joins cannot process negative tuples, so
    // their streaming input must not be strict non-monotonic. The NRR
    // variant is stricter still: it never stores the stream side, so it
    // cannot undo anything.
    if (n.child(0).pattern == UpdatePattern::kStrict) return false;
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    const PlanNode& c = *n.children[i];
    if (c.kind == PlanOpKind::kRelation &&
        !(n.kind == PlanOpKind::kJoin && i == 1)) {
      // Relations may only feed a join's right input.
      return false;
    }
    if (!ValidateNode(c, /*is_root=*/false)) return false;
  }
  return true;
}

}  // namespace

bool IsValidPlan(const PlanNode& root) { return ValidateNode(root, true); }

void ValidatePlan(const PlanNode& root) { UPA_CHECK(IsValidPlan(root)); }

}  // namespace upa
