#ifndef UPA_CORE_LOGICAL_PLAN_H_
#define UPA_CORE_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "core/update_pattern.h"
#include "ops/groupby.h"
#include "ops/predicate.h"

namespace upa {

/// Logical operator kinds. The logical algebra is the paper's Section 2.1
/// operator set plus the two relation variants of Section 4.1 (a join
/// whose right child is a kRelation leaf becomes the NRR-join or R-join)
/// and the count-based window extension of Section 7.
enum class PlanOpKind {
  kStream,       ///< Base stream leaf (infinite unless windowed).
  kRelation,     ///< Table leaf: NRR or retroactive relation.
  kWindow,       ///< Time-based sliding window over a stream.
  kCountWindow,  ///< Count-based sliding window (extension).
  kSelect,
  kProject,
  kUnion,
  kJoin,
  kIntersect,
  kDistinct,
  kGroupBy,
  kNegate,
};

/// A node of a logical continuous-query plan (an operator tree). Built
/// via the factory functions below, which compute output schemas; update
/// patterns are filled in by AnnotatePatterns().
struct PlanNode {
  PlanOpKind kind;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Output schema (computed by the builders).
  Schema schema;

  /// Update pattern of the sub-query rooted here (AnnotatePatterns).
  UpdatePattern pattern = UpdatePattern::kMonotonic;

  // --- Parameters (validity depends on `kind`). ---
  int stream_id = -1;               ///< kStream / kRelation.
  bool retroactive = false;         ///< kRelation: R (true) vs NRR (false).
  Time window_size = 0;             ///< kWindow.
  size_t count = 0;                 ///< kCountWindow.
  std::vector<Predicate> preds;     ///< kSelect.
  std::vector<int> cols;            ///< kProject columns / kDistinct keys.
  int left_col = -1;                ///< kJoin / kNegate left attribute.
  int right_col = -1;               ///< kJoin / kNegate right attribute.
  int group_col = -1;               ///< kGroupBy (-1 = single group).
  AggKind agg = AggKind::kCount;    ///< kGroupBy.
  int agg_col = -1;                 ///< kGroupBy.

  PlanNode() = default;
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  const PlanNode& child(int i) const { return *children[size_t(i)]; }
  PlanNode* mutable_child(int i) { return children[size_t(i)].get(); }

  /// Deep copy (used by the optimizer to derive rewritten candidates).
  std::unique_ptr<PlanNode> Clone() const;

  /// Multi-line rendering with per-edge update-pattern annotations, in the
  /// spirit of the paper's Figure 6.
  std::string ToString() const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

// --- Builders. All UPA_CHECK their argument well-formedness. ---

PlanPtr MakeStream(int stream_id, Schema schema);
/// `retroactive` selects the Section 4.1 semantics: false = NRR (updates
/// do not affect previously arrived stream tuples), true = R (they do).
PlanPtr MakeRelation(int stream_id, Schema schema, bool retroactive);
PlanPtr MakeWindow(PlanPtr stream, Time window_size);
PlanPtr MakeCountWindow(PlanPtr stream, size_t count);
PlanPtr MakeSelect(PlanPtr child, std::vector<Predicate> preds);
PlanPtr MakeProject(PlanPtr child, std::vector<int> cols);
PlanPtr MakeUnion(PlanPtr left, PlanPtr right);
/// Equi-join. If `right` is a kRelation leaf this is the NRR-join / R-join.
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, int left_col, int right_col);
PlanPtr MakeIntersect(PlanPtr left, PlanPtr right);
PlanPtr MakeDistinct(PlanPtr child, std::vector<int> key_cols);
PlanPtr MakeGroupBy(PlanPtr child, int group_col, AggKind agg, int agg_col);
/// W1 NOT-IN W2 on an attribute (Equation 1): the answer holds
/// max(v1 - v2, 0) left tuples per attribute value v, where v1/v2 are the
/// live multiplicities of v in the left/right input. The schemas need not
/// match; the output schema is the left input's.
PlanPtr MakeNegate(PlanPtr left, PlanPtr right, int left_col, int right_col);

/// Annotates every node with its update pattern using the five
/// propagation rules of Section 5.2 (leaf windows are WKS; stateless
/// operators over infinite streams stay monotonic).
void AnnotatePatterns(PlanNode* root);

/// Checks planner-level constraints (Section 5.4.2): relations appear
/// only as right children of joins, a relation-join's streaming input must
/// not be strict non-monotonic, and group-by only appears at the root
/// (its replace-semantics output feeds the group array view). Requires
/// patterns to be annotated. Returns false on violation.
bool IsValidPlan(const PlanNode& root);

/// UPA_CHECKs IsValidPlan(root); aborts on violation.
void ValidatePlan(const PlanNode& root);

}  // namespace upa

#endif  // UPA_CORE_LOGICAL_PLAN_H_
