#ifndef UPA_CORE_COST_MODEL_H_
#define UPA_CORE_COST_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "core/logical_plan.h"
#include "core/physical_planner.h"

namespace upa {

/// Per-column statistics of a base stream or relation, used to estimate
/// operator selectivities and state sizes (Section 5.4.1: "we assume that
/// these quantities may be approximated on the basis of stream arrival
/// rates, attribute value distributions, and operator selectivities").
struct ColumnStats {
  /// Distinct values in the column's domain.
  double distinct = 1000.0;
  /// Optional per-value frequency (fraction of tuples), for skewed columns
  /// such as the protocol field of the traffic trace; equality predicates
  /// fall back to 1/distinct when the value is not listed.
  std::map<Value, double> value_freq;
};

/// Statistics of one base stream / relation.
struct StreamStats {
  /// Arrival rate in tuples per time unit (Section 6.1 fixes ~1 per link).
  double rate = 1.0;
  /// Rows, for relations (rate then describes update frequency).
  double size = 0.0;
  std::map<int, ColumnStats> columns;
};

/// The statistics catalog keyed by stream id.
struct Catalog {
  std::map<int, StreamStats> streams;

  /// Fraction of left-column values that also occur in the right column's
  /// domain, keyed by ((stream_l, col_l), (stream_r, col_r)); drives the
  /// premature-expiration frequency of negation (Section 5.3.2: "if the
  /// two inputs have different sets of values of the negation attribute,
  /// then premature expirations never happen"). Defaults to 1.0.
  std::map<std::pair<std::pair<int, int>, std::pair<int, int>>, double>
      value_overlap;

  const StreamStats& Stream(int id) const;
  double Overlap(int stream_l, int col_l, int stream_r, int col_r) const;
};

/// Cardinality estimates derived for one plan edge.
struct NodeEstimate {
  double rate = 0.0;                ///< Output tuples per time unit.
  double size = 0.0;                ///< Live tuples of the sub-result.
  std::vector<double> distinct;     ///< Distinct values per output column.
  /// Dominant base stream feeding each column (stream id, col) for overlap
  /// lookups; -1 when unknown/derived.
  std::vector<std::pair<int, int>> origin;
  /// For STR edges: expected premature deletions per time unit.
  double premature_rate = 0.0;
};

/// Cost breakdown of one candidate plan under one execution strategy, in
/// abstract per-unit-time work units (Section 5.4.1's model). The absolute
/// scale is meaningless; only comparisons between candidate plans matter.
struct PlanCost {
  double total = 0.0;
  std::vector<std::pair<std::string, double>> per_node;
  /// Fraction of answer deletions expected to be premature, at the root.
  double premature_frequency = 0.0;
};

/// Estimates output rate / state size / distinct counts bottom-up.
NodeEstimate EstimateNode(const PlanNode& n, const Catalog& catalog);

/// Applies the Section 5.4.1 per-unit-time cost formulas, specialised by
/// execution strategy:
///  - selection/projection/union: sum of input rates;
///  - join/intersection: probe cost lambda1*N2 + lambda2*N1 plus state
///    maintenance that depends on the buffer structure (list scans for
///    DIRECT, per-partition work N/P for UPA, doubled tuple count for NT);
///  - delta-distinct: lambda1 * No / 2; classic duplicate elimination adds
///    the replacement scans of the stored input;
///  - group-by: 2 * lambda1 * C;
///  - negation: 2*lambda1*log(d1) + 2*lambda2*log(d2) plus premature
///    probing;
///  - materialized results: per-structure maintenance at the output rate.
PlanCost EstimatePlanCost(const PlanNode& plan, const Catalog& catalog,
                          ExecMode mode, const PlannerOptions& options);

/// Expected fraction of answer deletions that are premature (caused by
/// negation rather than window movement); used for the StrStrategy::kAuto
/// decision and reported by the optimizer.
double EstimatePrematureFrequency(const PlanNode& plan,
                                  const Catalog& catalog);

}  // namespace upa

#endif  // UPA_CORE_COST_MODEL_H_
