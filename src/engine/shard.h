#ifndef UPA_ENGINE_SHARD_H_
#define UPA_ENGINE_SHARD_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/tuple.h"
#include "engine/bounded_queue.h"
#include "engine/metrics.h"
#include "exec/pipeline.h"

namespace upa {

/// One unit of work routed to a shard: either a stream tuple or a control
/// message. Controls carry a target time to tick to and an optional
/// action run on the shard thread with exclusive access to the replica —
/// the mechanism behind consistent view snapshots and drain barriers.
struct ShardItem {
  int stream = -1;  ///< >= 0: tuple item; -1: control.
  Tuple tuple;

  Time control_ts = -1;  ///< Control: advance the replica clock to here.
  std::function<void(Pipeline&)> action;  ///< Control: run on shard thread.
  std::shared_ptr<std::promise<void>> done;  ///< Control: completion signal.
};

/// A worker thread owning one private Pipeline replica of a registered
/// query and the bounded queue feeding it.
///
/// The worker preserves the paper's Section 2 processing model locally:
/// queue order is the producer's ingest order, tuples of one shard carry
/// non-decreasing timestamps (the engine routes a monotone input stream),
/// and the worker calls Tick(ts) before Ingest for every timestamp
/// advance — so each replica observes the same local-clock discipline as
/// a single-threaded pipeline. Shards never share mutable state: cross-
/// thread communication is only the queue and the published counters.
class ShardExecutor {
 public:
  ShardExecutor(int index, std::unique_ptr<Pipeline> pipeline,
                size_t queue_capacity, size_t max_batch,
                BackpressurePolicy policy);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Launches the worker thread. Idempotent.
  void Start();

  /// Closes the queue, drains what was already enqueued, joins. Idempotent.
  void Stop();

  /// Routes one tuple to this shard (applies the backpressure policy).
  /// Returns false if the tuple was dropped or the shard is stopped.
  bool Enqueue(int stream, const Tuple& t);

  /// Enqueues a control message: the worker ticks the replica to `ts`
  /// (monotone; earlier times are ignored), then runs `action` (may be
  /// null) with exclusive access, then fulfills the returned future.
  /// Controls bypass the capacity bound so barriers cannot deadlock
  /// behind a full queue. If the shard is already stopped the future is
  /// ready immediately and `action` does not run.
  std::future<void> EnqueueControl(Time ts,
                                   std::function<void(Pipeline&)> action);

  /// Cheap, possibly one-batch-stale metrics snapshot.
  ShardMetrics Metrics(int shard_index) const;

  uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return queue_.dropped(); }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void Run();
  void PublishCounters();

  const int index_;
  const size_t max_batch_;
  std::unique_ptr<Pipeline> pipeline_;  // Touched only by the worker thread
                                        // (and pre-Start/post-Stop).
  BoundedQueue<ShardItem> queue_;
  std::mutex lifecycle_mu_;  // Serializes Start/Stop.
  std::thread worker_;       // Guarded by lifecycle_mu_.
  bool started_ = false;     // Guarded by lifecycle_mu_.
  bool stopped_ = false;     // Guarded by lifecycle_mu_.
  Time clock_ = -1;          // Worker thread only.

  std::atomic<uint64_t> processed_{0};
  std::atomic<size_t> state_bytes_{0};
  std::atomic<size_t> view_size_{0};
  mutable std::mutex stats_mu_;
  PipelineStats published_stats_;        // Guarded by stats_mu_.
  obs::PhaseBreakdown published_phases_; // Guarded by stats_mu_.
};

}  // namespace upa

#endif  // UPA_ENGINE_SHARD_H_
