#ifndef UPA_ENGINE_SHARD_H_
#define UPA_ENGINE_SHARD_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/tuple.h"
#include "engine/bounded_queue.h"
#include "engine/fault.h"
#include "engine/metrics.h"
#include "exec/pipeline.h"

namespace upa {

/// One row of a coalesced multi-row ShardItem (the engine's batched
/// ingest path, DESIGN.md Section 15). Rows carry the same payload as a
/// single-tuple item; the recovery log expands them back to per-row
/// entries so replay and checkpoint capture are batching-oblivious.
struct ShardRow {
  int stream = -1;
  Tuple tuple;
  uint64_t wal_seq = 0;
};

/// One unit of work routed to a shard: a stream tuple, a coalesced batch
/// of stream tuples, or a control message. Controls carry a target time
/// to tick to and an optional action run on the shard thread with
/// exclusive access to the replica — the mechanism behind consistent view
/// snapshots and drain barriers.
struct ShardItem {
  int stream = -1;  ///< >= 0: tuple item; -1: control or multi-row batch.
  Tuple tuple;
  /// WAL sequence number of the ingest record behind this tuple (0: not
  /// WAL-logged -- durability off, WAL failed, or recovery re-injection).
  /// Checkpoint capture filters the shard log on it so retained state and
  /// the replayed WAL suffix partition the input exactly at the barrier's
  /// WAL cut.
  uint64_t wal_seq = 0;

  /// Non-empty: a coalesced batch of rows in ingest order (timestamps
  /// non-decreasing), built by the engine when EngineOptions::batch_size
  /// > 1. The worker splits it into same-stream same-timestamp runs for
  /// Pipeline::IngestRun. Mutually exclusive with `stream >= 0` and with
  /// the control fields.
  std::vector<ShardRow> rows;

  Time control_ts = -1;  ///< Control: advance the replica clock to here.
  std::function<void(Pipeline&)> action;  ///< Control: run on shard thread.
  std::shared_ptr<std::promise<void>> done;  ///< Control: completion signal.
};

/// A worker thread owning one private Pipeline replica of a registered
/// query and the bounded queue feeding it.
///
/// The worker preserves the paper's Section 2 processing model locally:
/// queue order is the producer's ingest order, tuples of one shard carry
/// non-decreasing timestamps (the engine routes a monotone input stream),
/// and the worker calls Tick(ts) before Ingest for every timestamp
/// advance — so each replica observes the same local-clock discipline as
/// a single-threaded pipeline. Shards never share mutable state: cross-
/// thread communication is only the queue and the published counters.
///
/// Fault tolerance (EnableRecovery). A recovery-enabled shard keeps a
/// window-bounded log of everything it pops from the queue: the worker
/// appends the whole batch to the log *before* processing any item of it,
/// so a crash mid-batch loses nothing, and prunes entries older than the
/// recovery horizon (the largest registered window — per the paper's
/// expiration semantics, older tuples can no longer influence any
/// operator state). When the worker dies (an injected fault, or any
/// future real crash path that marks the shard crashed), Restart()
/// rebuilds a fresh replica from the factory and replays the log through
/// it — re-ticking and re-ingesting every retained tuple and re-running
/// any control whose caller is still waiting — then resumes consuming the
/// same queue. Because replay covers exactly the tuples still inside the
/// largest window, the rebuilt state is equal (as a multiset of live
/// tuples per buffer) to the lost replica's, and downstream results are
/// unchanged — the chaos tests' differential guarantee.
class ShardExecutor {
 public:
  ShardExecutor(int index, std::unique_ptr<Pipeline> pipeline,
                size_t queue_capacity, size_t max_batch,
                BackpressurePolicy policy);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// Enables the recovery log. `rebuild` must produce a fresh replica
  /// configured like the original (profiling, invariant checks);
  /// `horizon` is the replay window — log entries with `ts <= newest -
  /// horizon` are pruned (kNeverExpires retains everything, required for
  /// plans with relations, count windows, or unwindowed streams). Call
  /// before Start().
  void EnableRecovery(std::function<std::unique_ptr<Pipeline>()> rebuild,
                      Time horizon);

  /// Attaches the chaos-test fault injector (worker-side kill/delay
  /// hooks). Call before Start(). `query` names this shard's query in the
  /// injector's schedule.
  void SetFaultContext(FaultInjector* faults, std::string query);

  /// Launches the worker thread. Idempotent.
  void Start();

  /// Closes the queue, drains what was already enqueued, joins. If the
  /// worker had crashed, pending control promises (queued or logged) are
  /// fulfilled without running their actions so no caller hangs.
  /// Idempotent.
  void Stop();

  /// Restarts a crashed shard: joins the dead worker, rebuilds the
  /// replica via the recovery factory, replays the log, and relaunches
  /// the worker on the same queue (items enqueued since the crash are
  /// then consumed normally). Returns false if the shard is not crashed,
  /// not started, already stopped, or has no recovery factory.
  bool Restart();

  /// Routes one tuple to this shard (applies the backpressure policy).
  /// Returns false if the tuple was dropped or the shard is stopped.
  /// `wal_seq` tags the item with its WAL record (see ShardItem).
  bool Enqueue(int stream, const Tuple& t, uint64_t wal_seq = 0);

  /// Routes a coalesced batch of rows (ingest order, non-decreasing
  /// timestamps) to this shard as one queue item. Counts as a single
  /// item against the queue capacity — the engine's batch_size bounds
  /// how much data one item can carry. Returns false if dropped.
  bool EnqueueRows(std::vector<ShardRow> rows);

  /// Enqueues a control message: the worker ticks the replica to `ts`
  /// (monotone; earlier times are ignored), then runs `action` (may be
  /// null) with exclusive access, then fulfills the returned future.
  /// Controls bypass the capacity bound so barriers cannot deadlock
  /// behind a full queue. If the shard is already stopped the future is
  /// ready immediately and `action` does not run.
  std::future<void> EnqueueControl(Time ts,
                                   std::function<void(Pipeline&)> action);

  /// Overload degradation request (engine watchdog). The worker applies
  /// it to the replica at the next batch boundary — requests never
  /// contend with a busy pipeline, and a restarted replica re-applies the
  /// current request after replay.
  void SetDegraded(bool on) {
    degrade_request_.store(on, std::memory_order_relaxed);
  }

  /// Cheap, possibly one-batch-stale metrics snapshot.
  ShardMetrics Metrics(int shard_index) const;

  uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return queue_.dropped(); }
  size_t queue_depth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }

  /// True when the worker thread exited on a crash path and has not been
  /// restarted — what the engine watchdog polls.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// True when a crashed worker can be brought back by Restart() (a
  /// recovery factory was installed before Start). The factory is fixed
  /// pre-Start, so this is safe to read from any thread.
  bool recoverable() const { return rebuild_ != nullptr; }

  /// One retained data item of the recovery log (checkpoint capture).
  struct RetainedEntry {
    int stream = -1;
    uint64_t wal_seq = 0;
    Tuple tuple;
  };

  /// Copies the data entries of the recovery log whose WAL sequence is
  /// <= `max_seq` (entries tagged 0 -- recovery re-injections and
  /// pre-durability tuples -- always qualify: they precede every record
  /// the WAL suffix can replay). Called from a barrier control action on
  /// the shard thread, when everything enqueued before the barrier is
  /// already in the log; the engine persists the result as the shard's
  /// checkpoint state.
  std::vector<RetainedEntry> RetainedData(uint64_t max_seq) const;
  uint64_t restarts() const { return restarts_.load(std::memory_order_relaxed); }
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

 private:
  struct LogEntry {
    ShardItem item;
    bool acked = false;  ///< Controls: completion signalled; data: unused.
  };

  void Run();
  /// Processes one multi-row item: splits the rows into same-stream
  /// same-timestamp runs for Pipeline::IngestRun (or falls back to the
  /// per-tuple path when a fault injector is attached, so crash points
  /// keep per-tuple granularity). Returns true if an injected crash
  /// killed the worker mid-item.
  bool RunRows(const ShardItem& item);
  void PublishCounters();
  /// Appends every popped item to the recovery log, expanding multi-row
  /// items into per-row data entries (so replay, pruning, and checkpoint
  /// capture stay batching-oblivious). `item_seqs[i]` receives the log
  /// sequence assigned to batch[i] (controls need it for AckLogged; for
  /// an expanded item it is the sequence of its first row).
  void AppendBatchToLog(const std::vector<ShardItem>& batch,
                        std::vector<uint64_t>* item_seqs);
  void AckLogged(uint64_t seq);
  void PruneLogLocked();
  void ApplyDegradeRequest();
  /// Fulfills promises of pending controls (queued and logged) without
  /// running their actions; used by Stop() after a crash.
  void ReleasePendingControls();

  const int index_;
  const size_t max_batch_;
  std::unique_ptr<Pipeline> pipeline_;  // Touched only by the worker thread
                                        // (and pre-Start/post-Stop/during
                                        // Restart, when no worker runs).
  BoundedQueue<ShardItem> queue_;
  std::mutex lifecycle_mu_;  // Serializes Start/Stop/Restart.
  std::thread worker_;       // Guarded by lifecycle_mu_.
  bool started_ = false;     // Guarded by lifecycle_mu_.
  bool stopped_ = false;     // Guarded by lifecycle_mu_.
  Time clock_ = -1;          // Worker thread only.

  // Recovery state.
  std::function<std::unique_ptr<Pipeline>()> rebuild_;  // Pre-Start only.
  Time horizon_ = kNeverExpires;
  mutable std::mutex log_mu_;
  std::deque<LogEntry> log_;     // Guarded by log_mu_.
  uint64_t log_begin_seq_ = 0;   // Seq of log_.front(). Guarded by log_mu_.
  uint64_t log_end_seq_ = 0;     // Guarded by log_mu_.
  Time log_newest_ = -1;         // Newest data ts logged. Guarded by log_mu_.

  // Fault injection (chaos tests only; null in production).
  FaultInjector* faults_ = nullptr;  // Borrowed. Pre-Start only.
  std::string query_name_;           // Pre-Start only.

  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> restarts_{0};
  std::atomic<bool> degrade_request_{false};
  std::atomic<bool> degraded_{false};

  std::atomic<uint64_t> processed_{0};
  std::atomic<size_t> state_bytes_{0};
  std::atomic<size_t> view_size_{0};
  mutable std::mutex stats_mu_;
  PipelineStats published_stats_;        // Guarded by stats_mu_.
  HeavyLightStats published_heavy_;      // Guarded by stats_mu_.
  obs::PhaseBreakdown published_phases_; // Guarded by stats_mu_.
};

}  // namespace upa

#endif  // UPA_ENGINE_SHARD_H_
