#ifndef UPA_ENGINE_BOUNDED_QUEUE_H_
#define UPA_ENGINE_BOUNDED_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace upa {

/// What a producer does when a shard's ingest queue is full.
enum class BackpressurePolicy {
  /// Block the producer until the shard drains (lossless; the default —
  /// the determinism guarantees assume no tuple is ever lost).
  kBlock,
  /// Drop the new tuple and count it (load-shedding for best-effort
  /// deployments; the drop counter makes the loss observable).
  kDropNewest,
};

/// Bounded multi-producer single-consumer queue with batched consumption.
///
/// Producers (the engine's ingest threads) push single items under a
/// mutex; the shard worker drains up to a whole batch per wakeup, which
/// amortizes the lock and the condition-variable traffic over many
/// tuples. Capacity is a soft bound: normal pushes respect it via the
/// configured backpressure policy, while `PushUnbounded` (control
/// messages: barriers, snapshots) always succeeds so that draining and
/// shutdown can never deadlock behind a full queue.
template <typename T>
class BoundedQueue {
 public:
  BoundedQueue(size_t capacity, BackpressurePolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Pushes one item, applying the backpressure policy when full.
  /// Returns false iff the item was not enqueued (dropped, or the queue
  /// is closed).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == BackpressurePolicy::kBlock) {
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) {
      // Shutdown race: a producer lost against Close(). The tuple is just
      // as lost as a capacity shed, so it must count -- otherwise the
      // enqueued/processed/dropped ledger silently leaks during shutdown.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (items_.size() >= capacity_) {  // kDropNewest only.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Pushes ignoring the capacity bound; only fails once closed.
  bool PushUnbounded(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until items are available (or the queue is closed), then
  /// moves up to `max_items` of them into `out` (cleared first).
  /// Returns the number moved; 0 means closed-and-drained.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    const size_t n = std::min(max_items, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    // Several producers may be blocked; a batch frees many slots.
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Closes the queue: producers are released (Push returns false), and
  /// the consumer keeps draining what was enqueued before the close.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Tuples rejected since construction: capacity sheds under
  /// kDropNewest, plus pushes (either policy) that lost the shutdown race
  /// against Close(). Every rejected Push increments this exactly once.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  const BackpressurePolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace upa

#endif  // UPA_ENGINE_BOUNDED_QUEUE_H_
