#ifndef UPA_ENGINE_REGISTRY_H_
#define UPA_ENGINE_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/physical_planner.h"
#include "engine/shard.h"
#include "engine/subscription.h"

namespace upa {

/// Per-query execution knobs supplied at registration.
struct QueryOptions {
  /// Worker shards to run the query on; 0 = the engine default. Plans the
  /// partitionability analysis rejects always run on one shard.
  int shards = 0;
  /// Execution strategy of every shard replica.
  ExecMode mode = ExecMode::kUpa;
  PlannerOptions planner;
  /// Attach a sampling profiler to every shard replica; per-shard phase
  /// breakdowns (processing/insertion/expiration) then appear in
  /// ShardMetrics/QueryMetrics. See obs::ProfilerOptions for the cost.
  bool profile = false;
  obs::ProfilerOptions profiler;
  /// Assert the Section 5.2 update-pattern contract on every result the
  /// replicas deliver (WKS outputs expire FIFO, WK expirations are never
  /// signalled early or late). Aborts on violation — a test-harness knob.
  bool check_invariants = false;
  /// Build every shard replica with batched execution enabled
  /// (Pipeline::EnableBatching, DESIGN.md Section 15). Set by the engine
  /// when EngineOptions::batch_size > 1; threaded through the replica
  /// factory so recovery rebuilds inherit it.
  bool batching = false;
};

/// A registered continuous query: the owned logical plan, its partition
/// scheme, the replication factory, and the shard executors running it.
/// Shards are created by the registry (so the partition decision and the
/// executor layout stay in one place); threads are started by the engine.
class RegisteredQuery {
 public:
  /// `enable_recovery` turns on per-shard ingest logs and replica-rebuild
  /// factories (the horizon comes from RecoveryHorizon on the plan);
  /// `faults` (borrowed, may be null) attaches the chaos-test injector to
  /// every shard.
  RegisteredQuery(std::string name, PlanPtr plan, const QueryOptions& options,
                  int default_shards, size_t queue_capacity, size_t max_batch,
                  BackpressurePolicy policy, bool enable_recovery = false,
                  FaultInjector* faults = nullptr);

  const std::string& name() const { return name_; }
  const PlanNode& plan() const { return *plan_; }
  const PartitionScheme& scheme() const { return scheme_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  ExecMode mode() const { return factory_.mode(); }
  const QueryOptions& options() const { return options_; }

  /// SQL text the query was registered from; empty for RegisterPlan
  /// queries. Durability needs the text: checkpoints persist it so
  /// recovery can re-register through the same catalog/compile path, so
  /// plan-registered queries are documented as non-durable (counted in
  /// the metrics, skipped by checkpoints).
  const std::string& sql() const { return sql_; }
  void set_sql(std::string sql) { sql_ = std::move(sql); }

  /// True if the plan reads `stream_id` (as a stream or relation leaf).
  bool HasStream(int stream_id) const { return streams_.count(stream_id) > 0; }
  const std::set<int>& streams() const { return streams_; }

  /// Shard index for a tuple of `stream_id` (hash of the partition
  /// column, or 0 when running single-shard).
  int ShardOf(int stream_id, const Tuple& t) const;

  ShardExecutor& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const ShardExecutor& shard(int i) const {
    return *shards_[static_cast<size_t>(i)];
  }

  std::chrono::steady_clock::time_point registered_at() const {
    return registered_at_;
  }

  /// Tuples the engine has routed to this query (bumped by the engine's
  /// fan-out; includes tuples later shed under kDropNewest).
  std::atomic<uint64_t> enqueued{0};

  /// Overload state, driven by the engine watchdog: whether the query's
  /// replicas currently run in lazy-degraded mode, how often the high
  /// watermark tripped, and how often a shard was flagged as stalled.
  std::atomic<bool> degraded{false};
  std::atomic<uint64_t> degrade_events{0};
  std::atomic<uint64_t> stall_events{0};

  /// Sum of shard restarts (crash recoveries).
  uint64_t TotalRestarts() const;

  /// Fan-out point for result subscriptions (Engine::Subscribe). Always
  /// present; inert (one atomic load per delivered result) until a
  /// subscriber attaches.
  SubscriptionHub& hub() { return hub_; }
  const SubscriptionHub& hub() const { return hub_; }

  /// How a subscriber must materialize this query's delta stream: plans
  /// rooted at a group-by feed a GroupArrayView with (group, agg, count)
  /// replace records; everything else is a tuple multiset.
  ViewDeltaKind view_delta_kind() const;

 private:
  std::unique_ptr<Pipeline> MakeReplica() const;

  std::string name_;
  std::string sql_;  ///< Set by the engine right after construction.
  PlanPtr plan_;
  PartitionScheme scheme_;
  PipelineFactory factory_;
  QueryOptions options_;
  std::set<int> streams_;
  std::map<int, int> key_cols_;  // stream id -> base partition column.
  std::vector<std::unique_ptr<ShardExecutor>> shards_;
  std::chrono::steady_clock::time_point registered_at_;
  SubscriptionHub hub_;
};

/// Name-keyed collection of registered queries. Not thread-safe by
/// itself; the engine guards it with its registration lock.
class QueryRegistry {
 public:
  QueryRegistry() = default;

  /// Adds a query; fails (returns null) if the name is taken.
  RegisteredQuery* Add(std::unique_ptr<RegisteredQuery> query);

  /// Detaches a query from the registry and hands ownership back to the
  /// caller (null if the name is unknown). The caller is responsible for
  /// stopping the shards before destroying the object; the registry only
  /// forgets it. Later queries keep their registration order.
  std::unique_ptr<RegisteredQuery> Remove(const std::string& name);

  RegisteredQuery* Find(const std::string& name);
  const RegisteredQuery* Find(const std::string& name) const;

  /// Registration order (stable for fan-out and metrics).
  const std::vector<std::unique_ptr<RegisteredQuery>>& queries() const {
    return queries_;
  }

 private:
  std::vector<std::unique_ptr<RegisteredQuery>> queries_;
  std::map<std::string, size_t> by_name_;
};

}  // namespace upa

#endif  // UPA_ENGINE_REGISTRY_H_
