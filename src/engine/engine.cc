#include "engine/engine.h"

#include <algorithm>
#include <future>
#include <mutex>
#include <utility>

#include "common/macros.h"

namespace upa {

Engine::Engine(const EngineOptions& options) : options_(options) {}

Engine::~Engine() { Stop(); }

RegisterResult Engine::RegisterSql(const std::string& name,
                                   const std::string& sql,
                                   const QueryOptions& options) {
  ParseResult parsed = catalog_.Compile(sql);
  if (!parsed.ok()) {
    RegisterResult r;
    r.name = name;
    r.error = parsed.error;
    return r;
  }
  return DoRegister(name, std::move(parsed.plan), options);
}

RegisterResult Engine::RegisterPlan(const std::string& name, PlanPtr plan,
                                    const QueryOptions& options) {
  RegisterResult r;
  r.name = name;
  if (plan == nullptr) {
    r.error = "null plan";
    return r;
  }
  if (!IsValidPlan(*plan)) {
    r.error = "plan violates planner constraints (Section 5.4.2)";
    return r;
  }
  return DoRegister(name, std::move(plan), options);
}

RegisterResult Engine::DoRegister(const std::string& name, PlanPtr plan,
                                  const QueryOptions& options) {
  RegisterResult r;
  r.name = name;
  if (stopped_.load()) {
    r.error = "engine is stopped";
    return r;
  }
  QueryOptions effective = options;
  if (options_.profile_queries) effective.profile = true;
  auto query = std::make_unique<RegisteredQuery>(
      name, std::move(plan), effective, options_.default_shards,
      options_.queue_capacity, options_.max_batch, options_.backpressure);
  RegisteredQuery* q = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    q = registry_.Add(std::move(query));
  }
  if (q == nullptr) {
    r.error = "a query named '" + name + "' is already registered";
    return r;
  }
  for (int i = 0; i < q->num_shards(); ++i) q->shard(i).Start();
  r.ok = true;
  r.shards = q->num_shards();
  r.partitioned = q->scheme().partitionable;
  r.partition_note = q->scheme().ToString();
  return r;
}

void Engine::Ingest(int stream_id, const Tuple& t) {
  if (stopped_.load(std::memory_order_relaxed)) return;
  // Advance the engine clock (max: concurrent producers may race, keep
  // the highest).
  Time seen = clock_.load(std::memory_order_relaxed);
  while (t.ts > seen &&
         !clock_.compare_exchange_weak(seen, t.ts, std::memory_order_relaxed)) {
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) {
    if (!q->HasStream(stream_id)) continue;
    q->enqueued.fetch_add(1, std::memory_order_relaxed);
    q->shard(q->ShardOf(stream_id, t)).Enqueue(stream_id, t);
  }
}

void Engine::IngestTrace(const Trace& trace) {
  for (const TraceEvent& e : trace.events) Ingest(e.stream, e.tuple);
}

void Engine::AdvanceTo(Time now) {
  Time seen = clock_.load(std::memory_order_relaxed);
  while (now > seen &&
         !clock_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

namespace {

/// Barriers every shard of `q`: each worker ticks to `ts`, runs `action`
/// with its replica, and the call returns once all shards acked.
void BarrierQuery(RegisteredQuery* q, Time ts,
                  const std::function<void(int, Pipeline&)>& action) {
  std::vector<std::future<void>> acks;
  acks.reserve(static_cast<size_t>(q->num_shards()));
  for (int i = 0; i < q->num_shards(); ++i) {
    std::function<void(Pipeline&)> fn;
    if (action) {
      const int shard = i;
      fn = [shard, &action](Pipeline& p) { action(shard, p); };
    }
    acks.push_back(q->shard(i).EnqueueControl(ts, std::move(fn)));
  }
  for (auto& ack : acks) ack.wait();
}

}  // namespace

void Engine::Flush() {
  const Time ts = clock();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) BarrierQuery(q.get(), ts, {});
}

bool Engine::FlushQuery(const std::string& name) {
  const Time ts = clock();
  std::shared_lock<std::shared_mutex> lock(mu_);
  RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  BarrierQuery(q, ts, {});
  return true;
}

bool Engine::Snapshot(const std::string& name, std::vector<Tuple>* out,
                      Time at) {
  UPA_CHECK(out != nullptr);
  out->clear();
  const Time ts = std::max(at, clock());
  std::shared_lock<std::shared_mutex> lock(mu_);
  RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  std::vector<std::vector<Tuple>> parts(
      static_cast<size_t>(q->num_shards()));
  BarrierQuery(q, ts, [&parts](int shard, Pipeline& p) {
    parts[static_cast<size_t>(shard)] = p.view().Snapshot();
  });
  for (auto& part : parts) {
    out->insert(out->end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return true;
}

bool Engine::Stats(const std::string& name, PipelineStats* out) const {
  UPA_CHECK(out != nullptr);
  *out = PipelineStats{};
  std::shared_lock<std::shared_mutex> lock(mu_);
  const RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  for (int i = 0; i < q->num_shards(); ++i) {
    *out += q->shard(i).Metrics(i).stats;
  }
  return true;
}

EngineMetrics Engine::Metrics() const {
  EngineMetrics m;
  m.clock = clock();
  const auto now = std::chrono::steady_clock::now();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) {
    QueryMetrics qm;
    qm.name = q->name();
    qm.shards = q->num_shards();
    qm.partitioned = q->scheme().partitionable;
    qm.partition_note = q->scheme().ToString();
    qm.enqueued = q->enqueued.load(std::memory_order_relaxed);
    for (int i = 0; i < q->num_shards(); ++i) {
      ShardMetrics sm = q->shard(i).Metrics(i);
      qm.processed += sm.processed;
      qm.dropped += sm.dropped;
      qm.queue_depth += sm.queue_depth;
      qm.state_bytes += sm.state_bytes;
      qm.view_size += sm.view_size;
      qm.stats += sm.stats;
      if (sm.profiled) {
        qm.profiled = true;
        qm.phases += sm.phases;
      }
      qm.per_shard.push_back(std::move(sm));
    }
    qm.wall_seconds =
        std::chrono::duration<double>(now - q->registered_at()).count();
    qm.tuples_per_second = qm.wall_seconds > 0.0
                               ? static_cast<double>(qm.processed) /
                                     qm.wall_seconds
                               : 0.0;
    m.queries.push_back(std::move(qm));
  }
  return m;
}

void Engine::Stop() {
  if (stopped_.exchange(true)) return;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) {
    for (int i = 0; i < q->num_shards(); ++i) q->shard(i).Stop();
  }
}

}  // namespace upa
