#include "engine/engine.h"

#include <algorithm>
#include <future>
#include <mutex>
#include <utility>

#include "common/macros.h"

namespace upa {

Engine::Engine(const EngineOptions& options) : options_(options) {
  if (options_.supervise) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

Engine::~Engine() { Stop(); }

RegisterResult Engine::RegisterSql(const std::string& name,
                                   const std::string& sql,
                                   const QueryOptions& options) {
  ParseResult parsed = catalog_.Compile(sql);
  if (!parsed.ok()) {
    RegisterResult r;
    r.name = name;
    r.error = parsed.error;
    return r;
  }
  return DoRegister(name, std::move(parsed.plan), options);
}

RegisterResult Engine::RegisterPlan(const std::string& name, PlanPtr plan,
                                    const QueryOptions& options) {
  RegisterResult r;
  r.name = name;
  if (plan == nullptr) {
    r.error = "null plan";
    return r;
  }
  if (!IsValidPlan(*plan)) {
    r.error = "plan violates planner constraints (Section 5.4.2)";
    return r;
  }
  return DoRegister(name, std::move(plan), options);
}

RegisterResult Engine::DoRegister(const std::string& name, PlanPtr plan,
                                  const QueryOptions& options) {
  RegisterResult r;
  r.name = name;
  if (stopped_.load()) {
    r.error = "engine is stopped";
    return r;
  }
  QueryOptions effective = options;
  if (options_.profile_queries) effective.profile = true;
  if (options_.check_invariants) effective.check_invariants = true;
  const bool recovery = options_.supervise && options_.recover;
  auto query = std::make_unique<RegisteredQuery>(
      name, std::move(plan), effective, options_.default_shards,
      options_.queue_capacity, options_.max_batch, options_.backpressure,
      recovery, options_.fault_injector);
  RegisteredQuery* q = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    q = registry_.Add(std::move(query));
  }
  if (q == nullptr) {
    r.error = "a query named '" + name + "' is already registered";
    return r;
  }
  for (int i = 0; i < q->num_shards(); ++i) q->shard(i).Start();
  r.ok = true;
  r.shards = q->num_shards();
  r.partitioned = q->scheme().partitionable;
  r.partition_note = q->scheme().ToString();
  return r;
}

void Engine::Ingest(int stream_id, const Tuple& t) {
  if (stopped_.load(std::memory_order_relaxed)) return;
  if (options_.fault_injector != nullptr) {
    switch (options_.fault_injector->OnIngest()) {
      case FaultInjector::IngestAction::kDrop:
        return;  // Lost in "transport"; a held tuple stays held.
      case FaultInjector::IngestAction::kDuplicate:
        DeliverOne(stream_id, t);
        DeliverOne(stream_id, t);
        return;
      case FaultInjector::IngestAction::kReorder: {
        std::lock_guard<std::mutex> lock(hold_mu_);
        if (!has_held_) {
          // Park this tuple; it is released around the next delivery —
          // swapped behind an equal-timestamp successor, in front of any
          // later one (equal-ts tuples are unordered in the paper's
          // model, so only the equal-ts swap is a legal perturbation).
          has_held_ = true;
          held_stream_ = stream_id;
          held_ = t;
          return;
        }
        break;  // Already holding one: deliver normally.
      }
      case FaultInjector::IngestAction::kDeliver:
        break;
    }
  }
  DeliverOne(stream_id, t);
}

void Engine::DeliverOne(int stream_id, const Tuple& t) {
  bool have = false;
  bool after = false;
  int held_stream = -1;
  Tuple held;
  {
    std::lock_guard<std::mutex> lock(hold_mu_);
    if (has_held_) {
      have = true;
      held_stream = held_stream_;
      held = held_;
      has_held_ = false;
      after = held_.ts == t.ts;  // Equal ts: the swap. Older: keep order.
    }
  }
  if (have && !after) IngestImpl(held_stream, held);
  IngestImpl(stream_id, t);
  if (have && after) IngestImpl(held_stream, held);
}

void Engine::FlushHeld() {
  bool have = false;
  int held_stream = -1;
  Tuple held;
  {
    std::lock_guard<std::mutex> lock(hold_mu_);
    if (has_held_) {
      have = true;
      held_stream = held_stream_;
      held = held_;
      has_held_ = false;
    }
  }
  if (have) IngestImpl(held_stream, held);
}

void Engine::IngestImpl(int stream_id, const Tuple& t) {
  // Advance the engine clock (max: concurrent producers may race, keep
  // the highest).
  Time seen = clock_.load(std::memory_order_relaxed);
  while (t.ts > seen &&
         !clock_.compare_exchange_weak(seen, t.ts, std::memory_order_relaxed)) {
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) {
    if (!q->HasStream(stream_id)) continue;
    q->enqueued.fetch_add(1, std::memory_order_relaxed);
    q->shard(q->ShardOf(stream_id, t)).Enqueue(stream_id, t);
  }
}

void Engine::IngestTrace(const Trace& trace) {
  for (const TraceEvent& e : trace.events) Ingest(e.stream, e.tuple);
}

void Engine::AdvanceTo(Time now) {
  Time seen = clock_.load(std::memory_order_relaxed);
  while (now > seen &&
         !clock_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

namespace {

/// Barriers every shard of `q`: each worker ticks to `ts`, runs `action`
/// with its replica, and the call returns once all shards acked.
void BarrierQuery(RegisteredQuery* q, Time ts,
                  const std::function<void(int, Pipeline&)>& action) {
  std::vector<std::future<void>> acks;
  acks.reserve(static_cast<size_t>(q->num_shards()));
  for (int i = 0; i < q->num_shards(); ++i) {
    std::function<void(Pipeline&)> fn;
    if (action) {
      const int shard = i;
      fn = [shard, &action](Pipeline& p) { action(shard, p); };
    }
    acks.push_back(q->shard(i).EnqueueControl(ts, std::move(fn)));
  }
  for (auto& ack : acks) ack.wait();
}

}  // namespace

void Engine::Flush() {
  FlushHeld();
  const Time ts = clock();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) BarrierQuery(q.get(), ts, {});
}

bool Engine::FlushQuery(const std::string& name) {
  FlushHeld();
  const Time ts = clock();
  std::shared_lock<std::shared_mutex> lock(mu_);
  RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  BarrierQuery(q, ts, {});
  return true;
}

bool Engine::Snapshot(const std::string& name, std::vector<Tuple>* out,
                      Time at) {
  UPA_CHECK(out != nullptr);
  out->clear();
  FlushHeld();
  const Time ts = std::max(at, clock());
  std::shared_lock<std::shared_mutex> lock(mu_);
  RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  std::vector<std::vector<Tuple>> parts(
      static_cast<size_t>(q->num_shards()));
  BarrierQuery(q, ts, [&parts](int shard, Pipeline& p) {
    parts[static_cast<size_t>(shard)] = p.view().Snapshot();
  });
  for (auto& part : parts) {
    out->insert(out->end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return true;
}

bool Engine::Stats(const std::string& name, PipelineStats* out) const {
  UPA_CHECK(out != nullptr);
  *out = PipelineStats{};
  std::shared_lock<std::shared_mutex> lock(mu_);
  const RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  for (int i = 0; i < q->num_shards(); ++i) {
    *out += q->shard(i).Metrics(i).stats;
  }
  return true;
}

EngineMetrics Engine::Metrics() const {
  EngineMetrics m;
  m.clock = clock();
  const auto now = std::chrono::steady_clock::now();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) {
    QueryMetrics qm;
    qm.name = q->name();
    qm.shards = q->num_shards();
    qm.partitioned = q->scheme().partitionable;
    qm.partition_note = q->scheme().ToString();
    qm.enqueued = q->enqueued.load(std::memory_order_relaxed);
    qm.degraded = q->degraded.load(std::memory_order_relaxed);
    qm.degrade_events = q->degrade_events.load(std::memory_order_relaxed);
    qm.stall_events = q->stall_events.load(std::memory_order_relaxed);
    for (int i = 0; i < q->num_shards(); ++i) {
      ShardMetrics sm = q->shard(i).Metrics(i);
      qm.processed += sm.processed;
      qm.dropped += sm.dropped;
      qm.queue_depth += sm.queue_depth;
      qm.state_bytes += sm.state_bytes;
      qm.view_size += sm.view_size;
      qm.restarts += sm.restarts;
      qm.stats += sm.stats;
      if (sm.profiled) {
        qm.profiled = true;
        qm.phases += sm.phases;
      }
      qm.per_shard.push_back(std::move(sm));
    }
    qm.wall_seconds =
        std::chrono::duration<double>(now - q->registered_at()).count();
    qm.tuples_per_second = qm.wall_seconds > 0.0
                               ? static_cast<double>(qm.processed) /
                                     qm.wall_seconds
                               : 0.0;
    m.queries.push_back(std::move(qm));
  }
  return m;
}

void Engine::Stop() {
  if (stopped_.load(std::memory_order_relaxed)) return;
  FlushHeld();  // Before stopping ingest: the held tuple must not vanish.
  if (stopped_.exchange(true)) return;
  // The watchdog goes first so no restart races shard shutdown.
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) {
    for (int i = 0; i < q->num_shards(); ++i) q->shard(i).Stop();
  }
}

void Engine::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.watchdog_interval_ms),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();
    PollSupervisor();
    lock.lock();
  }
}

void Engine::PollSupervisor() {
  const auto now = std::chrono::steady_clock::now();
  const auto stall_after = std::chrono::milliseconds(options_.stall_timeout_ms);
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::lock_guard<std::mutex> watch_lock(watch_mu_);
  for (const auto& q : registry_.queries()) {
    size_t worst_depth = 0;
    size_t capacity = 0;
    for (int i = 0; i < q->num_shards(); ++i) {
      ShardExecutor& sh = q->shard(i);
      if (sh.crashed()) sh.Restart();
      worst_depth = std::max(worst_depth, sh.queue_depth());
      capacity = sh.queue_capacity();
      auto [it, inserted] = watch_.try_emplace(&sh);
      StallWatch& w = it->second;
      const uint64_t p = sh.processed();
      if (inserted || p != w.processed || sh.queue_depth() == 0 ||
          sh.crashed()) {
        w.processed = p;
        w.since = now;
        w.flagged = false;
      } else if (!w.flagged && now - w.since >= stall_after) {
        w.flagged = true;
        q->stall_events.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (capacity == 0) continue;
    const double frac =
        static_cast<double>(worst_depth) / static_cast<double>(capacity);
    if (!q->degraded.load(std::memory_order_relaxed) &&
        frac >= options_.degrade_high_watermark) {
      q->degraded.store(true, std::memory_order_relaxed);
      q->degrade_events.fetch_add(1, std::memory_order_relaxed);
      for (int i = 0; i < q->num_shards(); ++i) q->shard(i).SetDegraded(true);
    } else if (q->degraded.load(std::memory_order_relaxed) &&
               frac <= options_.degrade_low_watermark) {
      q->degraded.store(false, std::memory_order_relaxed);
      for (int i = 0; i < q->num_shards(); ++i) q->shard(i).SetDegraded(false);
    }
  }
}

}  // namespace upa
