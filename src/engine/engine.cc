#include "engine/engine.h"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <mutex>
#include <utility>

#include "common/macros.h"
#include "engine/durability/checkpoint.h"

namespace upa {

namespace {

/// Resolves batch_size = 0 (auto) to the UPA_BATCH environment variable
/// when it names a batch (> 1), else to per-tuple execution.
EngineOptions ResolveOptions(EngineOptions o) {
  if (o.batch_size == 0) {
    o.batch_size = 1;
    if (const char* env = std::getenv("UPA_BATCH")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 1) o.batch_size = static_cast<size_t>(v);
    }
  }
  return o;
}

}  // namespace

Engine::Engine(const EngineOptions& options)
    : Engine(options, DeferDurabilityTag{}) {
  if (!options_.durability.dir.empty()) InitDurability();
}

Engine::Engine(const EngineOptions& options, DeferDurabilityTag)
    : options_(ResolveOptions(options)) {
  if (options_.supervise) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

Engine::~Engine() { Stop(); }

void Engine::InitDurability() {
  // A plainly-constructed engine on a non-empty directory resumes
  // appending after whatever is already there (it does not restore state;
  // that is StartFromCheckpoint). Scanning finds the highest sequence so
  // the fresh segment never collides with surviving records.
  const durability::WalScanResult scan =
      durability::ScanWal(options_.durability.dir);
  uint64_t max_id = 0;
  for (const auto& [id, path] :
       durability::ListCheckpoints(options_.durability.dir)) {
    max_id = std::max(max_id, id);
  }
  {
    std::lock_guard<std::mutex> lock(durability_mu_);
    next_checkpoint_id_ = max_id + 1;
  }
  AttachWal(scan.max_seq + 1);
}

void Engine::AttachWal(uint64_t next_seq) {
  durability::WalWriterOptions wopts;
  wopts.segment_bytes = options_.durability.wal_segment_bytes;
  wopts.fsync = options_.durability.fsync;
  wal_ = std::make_unique<durability::WalWriter>(
      options_.durability.dir, wopts, options_.fault_injector);
  wal_->Start(next_seq);
  if (options_.durability.checkpoint_interval_ms > 0) {
    checkpointer_ = std::thread([this] { CheckpointLoop(); });
  }
}

int Engine::DeclareStream(const std::string& name, Schema schema) {
  // The unique lock orders the declaration record against concurrent
  // ingest appends (which hold the lock shared across append + enqueue).
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int id = catalog_.DeclareStream(name, std::move(schema));
  if (id >= 0 && wal_ != nullptr) {
    durability::WalRecord rec;
    rec.type = durability::WalRecordType::kDeclareSource;
    rec.source_name = name;
    rec.source = *catalog_.Find(name);
    wal_->Append(std::move(rec));
  }
  return id;
}

int Engine::DeclareRelation(const std::string& name, Schema schema,
                            bool retroactive) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int id = catalog_.DeclareRelation(name, std::move(schema), retroactive);
  if (id >= 0 && wal_ != nullptr) {
    durability::WalRecord rec;
    rec.type = durability::WalRecordType::kDeclareSource;
    rec.source_name = name;
    rec.source = *catalog_.Find(name);
    wal_->Append(std::move(rec));
  }
  return id;
}

RegisterResult Engine::RegisterSql(const std::string& name,
                                   const std::string& sql,
                                   const QueryOptions& options) {
  ParseResult parsed = catalog_.Compile(sql);
  if (!parsed.ok()) {
    RegisterResult r;
    r.name = name;
    r.error = parsed.error;
    return r;
  }
  return DoRegister(name, std::move(parsed.plan), options, sql);
}

RegisterResult Engine::RegisterPlan(const std::string& name, PlanPtr plan,
                                    const QueryOptions& options) {
  RegisterResult r;
  r.name = name;
  if (plan == nullptr) {
    r.error = "null plan";
    return r;
  }
  if (!IsValidPlan(*plan)) {
    r.error = "plan violates planner constraints (Section 5.4.2)";
    return r;
  }
  // No SQL text: the query runs but is not durable (checkpoints persist
  // SQL so recovery can re-register through the catalog; a bare plan has
  // no such handle). Metrics expose the count.
  return DoRegister(name, std::move(plan), options, "");
}

RegisterResult Engine::DoRegister(const std::string& name, PlanPtr plan,
                                  const QueryOptions& options,
                                  const std::string& sql) {
  RegisterResult r;
  r.name = name;
  if (stopped_.load()) {
    r.error = "engine is stopped";
    return r;
  }
  QueryOptions effective = options;
  if (options_.profile_queries) effective.profile = true;
  if (options_.check_invariants) effective.check_invariants = true;
  // Batched ingest builds every replica (including recovery rebuilds,
  // which go through the same factory) with batch-mode ticks enabled.
  if (options_.batch_size > 1) effective.batching = true;
  // Heavy-light skew knob: a per-query planner setting wins; otherwise
  // inherit the engine-wide default (itself -1 = auto, resolved against
  // UPA_HEAVY_THRESHOLD inside BuildPipeline).
  if (effective.planner.heavy_threshold < 0) {
    effective.planner.heavy_threshold = options_.heavy_threshold;
  }
  // Durability implies per-shard ingest logs: they are the retained-state
  // source of checkpoints, and they make every shard restartable, so a
  // snapshot/checkpoint barrier can always recover a crashed shard.
  const bool recovery = (options_.supervise && options_.recover) ||
                        !options_.durability.dir.empty();
  auto query = std::make_unique<RegisteredQuery>(
      name, std::move(plan), effective, options_.default_shards,
      options_.queue_capacity, options_.max_batch, options_.backpressure,
      recovery, options_.fault_injector);
  query->set_sql(sql);
  RegisteredQuery* q = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    q = registry_.Add(std::move(query));
    if (q != nullptr && wal_ != nullptr && !sql.empty()) {
      // Logged under the same lock that admitted the query, so the WAL
      // orders the registration before every tuple routed to it.
      durability::WalRecord rec;
      rec.type = durability::WalRecordType::kRegisterQuery;
      rec.query_name = name;
      rec.sql = sql;
      rec.shards = q->num_shards();  // Pin the effective count for replay.
      rec.mode = static_cast<uint8_t>(q->mode());
      wal_->Append(std::move(rec));
    }
  }
  if (q == nullptr) {
    r.error = "a query named '" + name + "' is already registered";
    return r;
  }
  for (int i = 0; i < q->num_shards(); ++i) q->shard(i).Start();
  r.ok = true;
  r.shards = q->num_shards();
  r.partitioned = q->scheme().partitionable;
  r.partition_note = q->scheme().ToString();
  return r;
}

bool Engine::UnregisterQuery(const std::string& name, std::string* error) {
  if (stopped_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "engine is stopped";
    return false;
  }
  // Serialize against whole checkpoints: Checkpoint captures raw query
  // pointers under the registration lock but dereferences them in its
  // later phases outside it, so a removal must never interleave with a
  // checkpoint in flight. Same lock order as Checkpoint
  // (checkpoint_mu_ before mu_).
  std::lock_guard<std::mutex> ckpt_lock(checkpoint_mu_);
  std::unique_ptr<RegisteredQuery> q;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Acknowledged rows pending for this query must reach its shards
    // before the registry forgets it, or they would be silently dropped.
    FlushPendingLocked();
    q = registry_.Remove(name);
    if (q != nullptr && wal_ != nullptr && !q->sql().empty()) {
      // Logged under the same lock that removed the query, so the WAL
      // orders the removal after every tuple that was routed to it (a
      // replay re-registers, replays those tuples, then unregisters).
      durability::WalRecord rec;
      rec.type = durability::WalRecordType::kUnregisterQuery;
      rec.query_name = name;
      wal_->Append(std::move(rec));
    }
  }
  if (q == nullptr) {
    if (error != nullptr) {
      *error = "no query named '" + name + "' is registered";
    }
    return false;
  }
  // The registry has forgotten the query: no producer can route to it and
  // no barrier can find it. Drain and join its workers outside the lock
  // so every other query keeps ingesting during the teardown.
  for (int i = 0; i < q->num_shards(); ++i) q->shard(i).Stop();
  {
    // Purge the stall-watch entries keyed by the dying shard executors so
    // a later allocation at the same address cannot inherit their state.
    std::lock_guard<std::mutex> watch_lock(watch_mu_);
    for (int i = 0; i < q->num_shards(); ++i) watch_.erase(&q->shard(i));
  }
  // Destroying the query tears down its subscription hub. Safe: Stop()
  // joined the shard workers, so no EmitDelta is in flight, and the
  // barrier paths can no longer reach the hub.
  return true;
}

void Engine::Ingest(int stream_id, const Tuple& t) {
  if (stopped_.load(std::memory_order_relaxed)) return;
  if (options_.fault_injector != nullptr) {
    switch (options_.fault_injector->OnIngest()) {
      case FaultInjector::IngestAction::kDrop:
        return;  // Lost in "transport"; a held tuple stays held.
      case FaultInjector::IngestAction::kDuplicate:
        DeliverOne(stream_id, t);
        DeliverOne(stream_id, t);
        return;
      case FaultInjector::IngestAction::kReorder: {
        std::lock_guard<std::mutex> lock(hold_mu_);
        if (!has_held_) {
          // Park this tuple; it is released around the next delivery —
          // swapped behind an equal-timestamp successor, in front of any
          // later one (equal-ts tuples are unordered in the paper's
          // model, so only the equal-ts swap is a legal perturbation).
          has_held_ = true;
          held_stream_ = stream_id;
          held_ = t;
          return;
        }
        break;  // Already holding one: deliver normally.
      }
      case FaultInjector::IngestAction::kDeliver:
        break;
    }
  }
  DeliverOne(stream_id, t);
}

void Engine::DeliverOne(int stream_id, const Tuple& t) {
  bool have = false;
  bool after = false;
  int held_stream = -1;
  Tuple held;
  {
    std::lock_guard<std::mutex> lock(hold_mu_);
    if (has_held_) {
      have = true;
      held_stream = held_stream_;
      held = held_;
      has_held_ = false;
      after = held_.ts == t.ts;  // Equal ts: the swap. Older: keep order.
    }
  }
  if (have && !after) IngestImpl(held_stream, held);
  IngestImpl(stream_id, t);
  if (have && after) IngestImpl(held_stream, held);
}

void Engine::FlushHeld() {
  bool have = false;
  int held_stream = -1;
  Tuple held;
  {
    std::lock_guard<std::mutex> lock(hold_mu_);
    if (has_held_) {
      have = true;
      held_stream = held_stream_;
      held = held_;
      has_held_ = false;
    }
  }
  if (have) IngestImpl(held_stream, held);
}

void Engine::IngestImpl(int stream_id, const Tuple& t) {
  // Advance the engine clock (max: concurrent producers may race, keep
  // the highest).
  Time seen = clock_.load(std::memory_order_relaxed);
  while (t.ts > seen &&
         !clock_.compare_exchange_weak(seen, t.ts, std::memory_order_relaxed)) {
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Log before routing, and under the same (shared) lock: a checkpoint
  // reads its WAL cut under the unique lock, which cannot interleave
  // here, so every record at or below the cut has also reached its shard
  // queue before the checkpoint's barrier control. (With batching, "the
  // shard queue" includes the pending batch: the checkpoint flushes it
  // under the same unique lock before reading the cut.)
  uint64_t seq = 0;
  if (wal_ != nullptr) {
    durability::WalRecord rec;
    rec.type = durability::WalRecordType::kIngest;
    rec.stream = stream_id;
    rec.tuple = t;
    seq = wal_->Append(std::move(rec));
  }
  if (options_.batch_size > 1) {
    // Coalesce; routing happens with batch_mu_ held so two full batches
    // from concurrent producers cannot interleave inside a shard queue.
    std::lock_guard<std::mutex> blk(batch_mu_);
    pending_.push_back({stream_id, t, seq});
    if (pending_.size() >= options_.batch_size) RouteRowsLocked();
    return;
  }
  for (const auto& q : registry_.queries()) {
    if (!q->HasStream(stream_id)) continue;
    q->enqueued.fetch_add(1, std::memory_order_relaxed);
    q->shard(q->ShardOf(stream_id, t)).Enqueue(stream_id, t, seq);
  }
}

void Engine::FlushPendingBatch() {
  if (options_.batch_size <= 1) return;
  std::shared_lock<std::shared_mutex> lock(mu_);
  FlushPendingLocked();
}

void Engine::FlushPendingLocked() {
  if (options_.batch_size <= 1) return;
  std::lock_guard<std::mutex> blk(batch_mu_);
  RouteRowsLocked();
}

void Engine::RouteRowsLocked() {
  if (pending_.empty()) return;
  std::vector<std::vector<ShardRow>> per_shard;
  for (const auto& q : registry_.queries()) {
    per_shard.assign(static_cast<size_t>(q->num_shards()), {});
    bool any = false;
    for (const PendingRow& r : pending_) {
      if (!q->HasStream(r.stream)) continue;
      q->enqueued.fetch_add(1, std::memory_order_relaxed);
      const size_t s = static_cast<size_t>(q->ShardOf(r.stream, r.tuple));
      per_shard[s].push_back({r.stream, r.tuple, r.seq});
      any = true;
    }
    if (!any) continue;
    for (size_t s = 0; s < per_shard.size(); ++s) {
      if (!per_shard[s].empty()) {
        q->shard(static_cast<int>(s)).EnqueueRows(std::move(per_shard[s]));
      }
    }
  }
  pending_.clear();
}

void Engine::IngestTrace(const Trace& trace) {
  for (const TraceEvent& e : trace.events) Ingest(e.stream, e.tuple);
}

void Engine::AdvanceTo(Time now) {
  // Route pending rows first: a time advance must not overtake rows that
  // were acknowledged before it (the recovery digest check barriers at
  // the checkpoint clock right after AdvanceTo).
  FlushPendingBatch();
  Time seen = clock_.load(std::memory_order_relaxed);
  bool advanced = false;
  while (now > seen) {
    if (clock_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
      advanced = true;
      break;
    }
  }
  if (!advanced || stopped_.load(std::memory_order_relaxed)) return;
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (wal_ != nullptr) {
    durability::WalRecord rec;
    rec.type = durability::WalRecordType::kAdvance;
    rec.advance_to = now;
    wal_->Append(std::move(rec));
  }
}

namespace {

/// Waits for every shard's barrier ack, restarting crashed shards inline
/// (racing the watchdog is safe: ShardExecutor::Restart is serialized per
/// shard and replaying the log acks the parked control). Returns false —
/// promptly, instead of hanging — when a shard crashed without a recovery
/// factory and can therefore never ack.
bool AwaitBarrier(RegisteredQuery* q, std::vector<std::future<void>>* acks) {
  bool ok = true;
  for (int i = 0; i < q->num_shards(); ++i) {
    std::future<void>& ack = (*acks)[static_cast<size_t>(i)];
    for (;;) {
      if (ack.wait_for(std::chrono::milliseconds(2)) ==
          std::future_status::ready) {
        // A ready future is not yet an ack: a worker that crashes mid-batch
        // abandons the batch, and destroying the un-run control's promise
        // makes the future ready with broken_promise. Without a recovery
        // log nothing else holds the promise alive (with one, the log's
        // shared_ptr keeps it pending until replay acks it), so broken
        // means the barrier died with the shard — fail, don't report a
        // view with that shard's part silently empty.
        try {
          ack.get();
        } catch (const std::future_error&) {
          ok = false;
        }
        break;
      }
      ShardExecutor& sh = q->shard(i);
      if (sh.crashed()) {
        if (!sh.recoverable()) {
          ok = false;
          break;
        }
        sh.Restart();
      }
    }
  }
  return ok;
}

/// Barriers every shard of `q`: each worker ticks to `ts`, runs `action`
/// with its replica, and the call returns once all shards acked (or a
/// shard is unrecoverably dead, see AwaitBarrier).
bool BarrierQuery(RegisteredQuery* q, Time ts,
                  const std::function<void(int, Pipeline&)>& action) {
  std::vector<std::future<void>> acks;
  acks.reserve(static_cast<size_t>(q->num_shards()));
  for (int i = 0; i < q->num_shards(); ++i) {
    std::function<void(Pipeline&)> fn;
    if (action) {
      const int shard = i;
      fn = [shard, &action](Pipeline& p) { action(shard, p); };
    }
    acks.push_back(q->shard(i).EnqueueControl(ts, std::move(fn)));
  }
  return AwaitBarrier(q, &acks);
}

}  // namespace

bool Engine::Flush() {
  FlushHeld();
  FlushPendingBatch();
  const Time ts = clock();
  std::vector<std::string> need_reset;
  bool ok = true;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& q : registry_.queries()) {
      if (BarrierQuery(q.get(), ts, {})) {
        PublishBarrier(q.get(), ts, &need_reset);
      } else {
        ok = false;
      }
    }
  }
  ResetSubscriptions(need_reset, ts);
  return ok;
}

bool Engine::FlushQuery(const std::string& name) {
  FlushHeld();
  FlushPendingBatch();
  const Time ts = clock();
  std::vector<std::string> need_reset;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    RegisteredQuery* q = registry_.Find(name);
    if (q == nullptr) return false;
    if (!BarrierQuery(q, ts, {})) return false;
    PublishBarrier(q, ts, &need_reset);
  }
  ResetSubscriptions(need_reset, ts);
  return true;
}

bool Engine::Snapshot(const std::string& name, std::vector<Tuple>* out,
                      Time at) {
  UPA_CHECK(out != nullptr);
  out->clear();
  FlushHeld();
  FlushPendingBatch();
  const Time ts = std::max(at, clock());
  std::vector<std::string> need_reset;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    RegisteredQuery* q = registry_.Find(name);
    if (q == nullptr) return false;
    std::vector<std::vector<Tuple>> parts(
        static_cast<size_t>(q->num_shards()));
    if (!BarrierQuery(q, ts, [&parts](int shard, Pipeline& p) {
          parts[static_cast<size_t>(shard)] = p.view().Snapshot();
        })) {
      return false;
    }
    PublishBarrier(q, ts, &need_reset);
    for (auto& part : parts) {
      out->insert(out->end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
    }
  }
  ResetSubscriptions(need_reset, ts);
  return true;
}

void Engine::PublishBarrier(RegisteredQuery* q, Time ts,
                            std::vector<std::string>* need_reset) {
  SubscriptionHub& hub = q->hub();
  if (!hub.active()) return;
  if (hub.attached_restarts != q->TotalRestarts()) {
    // Some replica was rebuilt by replay since the sinks were attached:
    // the rebuilt pipeline carries no sink, so its subscribers have a
    // delta gap. Schedule a snapshot reset (under the unique lock, after
    // the shared section ends) instead of a watermark.
    need_reset->push_back(q->name());
  } else {
    hub.EmitWatermark(ts);
  }
}

void Engine::ResetSubscriptions(const std::vector<std::string>& names,
                                Time ts) {
  if (names.empty()) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  FlushPendingLocked();
  for (const std::string& name : names) {
    RegisteredQuery* q = registry_.Find(name);
    if (q == nullptr) continue;
    SubscriptionHub* hub = &q->hub();
    if (!hub->active()) continue;
    std::vector<std::vector<Tuple>> parts(
        static_cast<size_t>(q->num_shards()));
    if (!BarrierQuery(q, ts, [hub, &parts](int shard, Pipeline& p) {
          p.SetDeltaSink([hub](const Tuple& t) {
            if (hub->active()) hub->EmitDelta(t);
          });
          parts[static_cast<size_t>(shard)] = p.view().Snapshot();
        })) {
      continue;  // Unrecoverable shard: the next barrier will retry.
    }
    hub->attached_restarts = q->TotalRestarts();
    std::vector<Tuple> snapshot;
    for (auto& part : parts) {
      snapshot.insert(snapshot.end(), std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
    }
    hub->EmitReset(snapshot);
  }
}

bool Engine::Subscribe(const std::string& name, SubscriptionCallback callback,
                       SubscriptionInfo* info) {
  FlushHeld();
  const Time ts = clock();
  // The unique lock blocks producers for the whole attach: after the
  // barrier drains the shard queues nothing can emit, so there is no
  // window between the snapshot capture and the callback attach in which
  // a delta could be lost or duplicated.
  std::unique_lock<std::shared_mutex> lock(mu_);
  FlushPendingLocked();  // Producers are locked out: the flush is exact.
  RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  SubscriptionHub* hub = &q->hub();
  std::vector<std::vector<Tuple>> parts(static_cast<size_t>(q->num_shards()));
  if (!BarrierQuery(q, ts, [hub, &parts](int shard, Pipeline& p) {
        p.SetDeltaSink([hub](const Tuple& t) {
          if (hub->active()) hub->EmitDelta(t);
        });
        parts[static_cast<size_t>(shard)] = p.view().Snapshot();
      })) {
    return false;
  }
  hub->attached_restarts = q->TotalRestarts();
  const uint64_t id =
      next_subscription_id_.fetch_add(1, std::memory_order_relaxed);
  if (info != nullptr) {
    info->id = id;
    info->query = name;
    info->pattern = q->plan().pattern;
    info->view_kind = q->view_delta_kind();
    info->snapshot.clear();
    for (auto& part : parts) {
      info->snapshot.insert(info->snapshot.end(),
                            std::make_move_iterator(part.begin()),
                            std::make_move_iterator(part.end()));
    }
  }
  hub->Add(id, std::move(callback));
  return true;
}

bool Engine::Resubscribe(const std::string& name, uint64_t id,
                         SubscriptionCallback callback,
                         std::vector<Tuple>* snapshot) {
  FlushHeld();
  const Time ts = clock();
  // Same attach discipline as Subscribe: producers are locked out for
  // the whole swap, so the snapshot and the callback handoff are one
  // atomic step -- no delta is lost to the old callback or duplicated
  // to the new one.
  std::unique_lock<std::shared_mutex> lock(mu_);
  FlushPendingLocked();
  RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  SubscriptionHub* hub = &q->hub();
  if (!hub->Remove(id)) return false;
  std::vector<std::vector<Tuple>> parts(static_cast<size_t>(q->num_shards()));
  if (!BarrierQuery(q, ts, [hub, &parts](int shard, Pipeline& p) {
        p.SetDeltaSink([hub](const Tuple& t) {
          if (hub->active()) hub->EmitDelta(t);
        });
        parts[static_cast<size_t>(shard)] = p.view().Snapshot();
      })) {
    return false;
  }
  hub->attached_restarts = q->TotalRestarts();
  if (snapshot != nullptr) {
    snapshot->clear();
    for (auto& part : parts) {
      snapshot->insert(snapshot->end(),
                       std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
    }
  }
  hub->Add(id, std::move(callback));
  return true;
}

const RegisteredQuery* Engine::FindQuery(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return registry_.Find(name);
}

bool Engine::Unsubscribe(const std::string& name, uint64_t id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  return q->hub().Remove(id);
}

bool Engine::Checkpoint(std::string* error) {
  auto fail = [this, error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    std::lock_guard<std::mutex> lock(durability_mu_);
    ++checkpoint_failures_;
    return false;
  };
  if (options_.durability.dir.empty() || wal_ == nullptr) {
    if (error != nullptr) *error = "durability is not enabled";
    return false;
  }
  if (stopped_.load(std::memory_order_relaxed)) {
    return fail("engine is stopped");
  }
  std::lock_guard<std::mutex> ckpt_lock(checkpoint_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  FlushHeld();

  // Phase 1 (under the unique lock, so no ingest can interleave): read
  // the barrier time and the WAL cut S, copy the catalog, and enqueue one
  // capture control per shard of every durable query. Every WAL record
  // <= S is already in its shard queue ahead of the control; records > S
  // do not exist yet.
  durability::Manifest m;
  struct Capture {
    RegisteredQuery* q = nullptr;
    std::vector<durability::ShardState> states;
    std::vector<std::future<void>> acks;
    std::atomic<int> done{0};
  };
  std::vector<std::unique_ptr<Capture>> captures;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Route pending rows before reading the WAL cut: every record at or
    // below the cut must be in its shard queue ahead of the capture
    // controls, and producers (who append + coalesce under the shared
    // lock) cannot interleave here.
    FlushPendingLocked();
    m.clock = clock();
    m.wal_seq = wal_->last_seq();
    for (const auto& [name, decl] : catalog_.sources()) {
      m.sources.push_back({name, decl});
    }
    const uint64_t cut = m.wal_seq;
    const Time ts = m.clock;
    for (const auto& q : registry_.queries()) {
      if (q->sql().empty()) continue;  // Plan-registered: not durable.
      auto cap = std::make_unique<Capture>();
      cap->q = q.get();
      cap->states.resize(static_cast<size_t>(q->num_shards()));
      cap->acks.reserve(cap->states.size());
      for (int i = 0; i < q->num_shards(); ++i) {
        durability::ShardState* slot = &cap->states[static_cast<size_t>(i)];
        ShardExecutor* sh = &q->shard(i);
        std::atomic<int>* done = &cap->done;
        cap->acks.push_back(q->shard(i).EnqueueControl(
            ts, [slot, sh, cut, ts, done](Pipeline& p) {
              slot->clock = ts;
              slot->view_digest = p.view().Digest();
              for (const auto& e : sh->RetainedData(cut)) {
                slot->retained.push_back({e.stream, e.wal_seq, e.tuple});
              }
              done->fetch_add(1, std::memory_order_release);
            }));
      }
      captures.push_back(std::move(cap));
    }
  }

  // Phase 2: wait outside the lock (ingest proceeds meanwhile; crashed
  // shards are restarted inline by AwaitBarrier).
  for (auto& cap : captures) {
    if (!AwaitBarrier(cap->q, &cap->acks)) {
      return fail("query '" + cap->q->name() +
                  "' has an unrecoverably crashed shard");
    }
    if (cap->done.load(std::memory_order_acquire) !=
        static_cast<int>(cap->states.size())) {
      // Futures resolved without the actions running: the engine stopped
      // under us and the slots are unpopulated. Never persist them.
      return fail("engine stopped during checkpoint");
    }
  }

  // Phase 3: pattern-aware truncation. A retained tuple older than its
  // source's recovery horizon has expired out of every buffer fed by that
  // leaf (paper Sections 4-5) and is dead weight; dropping it here is
  // what makes checkpoint size track window size, not stream length.
  uint64_t retained_total = 0;
  uint64_t truncated_total = 0;
  for (auto& cap : captures) {
    durability::QueryEntry e;
    e.name = cap->q->name();
    e.sql = cap->q->sql();
    e.shards = cap->q->num_shards();
    e.mode = static_cast<uint8_t>(cap->q->mode());
    const std::map<int, Time> horizons =
        StreamRecoveryHorizons(cap->q->plan());
    for (auto& st : cap->states) {
      std::vector<durability::RetainedEvent> kept;
      kept.reserve(st.retained.size());
      for (auto& ev : st.retained) {
        const auto it = horizons.find(ev.stream);
        const Time h = it != horizons.end() ? it->second : kNeverExpires;
        if (h == kNeverExpires || m.clock - ev.tuple.ts < h) {
          kept.push_back(std::move(ev));
        } else {
          ++e.truncated_total;
        }
      }
      st.retained = std::move(kept);
      e.retained_total += st.retained.size();
    }
    e.shard_states = std::move(cap->states);
    retained_total += e.retained_total;
    truncated_total += e.truncated_total;
    m.queries.push_back(std::move(e));
  }

  {
    std::lock_guard<std::mutex> lock(durability_mu_);
    m.id = next_checkpoint_id_++;
  }
  size_t bytes = 0;
  std::string werr;
  if (!durability::WriteCheckpoint(options_.durability.dir, m,
                                   options_.durability.fsync, &bytes,
                                   &werr)) {
    return fail("checkpoint write failed: " + werr);
  }

  // Phase 4: bookkeeping and garbage collection. WAL segments are only
  // dropped once no retained checkpoint could need them for its suffix.
  const int keep = std::max(1, options_.durability.keep_checkpoints);
  uint64_t min_seq = m.wal_seq;
  {
    std::lock_guard<std::mutex> lock(durability_mu_);
    ++checkpoints_written_;
    last_checkpoint_id_ = m.id;
    last_checkpoint_bytes_ = bytes;
    last_checkpoint_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    last_retained_tuples_ = retained_total;
    last_truncated_tuples_ = truncated_total;
    checkpoint_history_.emplace_back(m.id, m.wal_seq);
    while (checkpoint_history_.size() > static_cast<size_t>(keep)) {
      checkpoint_history_.erase(checkpoint_history_.begin());
    }
    for (const auto& [id, s] : checkpoint_history_) {
      min_seq = std::min(min_seq, s);
    }
  }
  durability::RemoveObsoleteCheckpoints(options_.durability.dir, keep);
  wal_->RemoveObsoleteSegments(min_seq);
  return true;
}

void Engine::ApplyWalRecord(const durability::WalRecord& rec,
                            durability::RecoveryReport* report) {
  switch (rec.type) {
    case durability::WalRecordType::kIngest:
      ++report->wal_ingest_replayed;
      IngestImpl(rec.stream, rec.tuple);
      break;
    case durability::WalRecordType::kAdvance:
      AdvanceTo(rec.advance_to);
      break;
    case durability::WalRecordType::kDeclareSource: {
      std::unique_lock<std::shared_mutex> lock(mu_);
      if (catalog_.Declare(rec.source_name, rec.source) >= 0) {
        ++report->sources_restored;
      } else if (report->note.empty()) {
        report->note =
            "replayed declaration of '" + rec.source_name + "' failed";
      }
      break;
    }
    case durability::WalRecordType::kRegisterQuery: {
      QueryOptions qo;
      qo.shards = rec.shards;
      qo.mode = rec.mode <= static_cast<uint8_t>(ExecMode::kUpa)
                    ? static_cast<ExecMode>(rec.mode)
                    : ExecMode::kUpa;
      const RegisterResult r = RegisterSql(rec.query_name, rec.sql, qo);
      if (r.ok) {
        ++report->queries_restored;
      } else if (report->note.empty()) {
        report->note = "replayed registration of '" + rec.query_name +
                       "' failed: " + r.error;
      }
      break;
    }
    case durability::WalRecordType::kUnregisterQuery: {
      std::string uerr;
      if (UnregisterQuery(rec.query_name, &uerr)) {
        ++report->queries_unregistered;
      } else if (report->note.empty()) {
        report->note = "replayed unregistration of '" + rec.query_name +
                       "' failed: " + uerr;
      }
      break;
    }
  }
}

std::unique_ptr<Engine> Engine::StartFromCheckpoint(
    const std::string& dir, EngineOptions options,
    durability::RecoveryReport* report) {
  const auto t0 = std::chrono::steady_clock::now();
  options.durability.dir = dir;
  const durability::RecoveryContext ctx = durability::LoadRecoveryContext(dir);

  durability::RecoveryReport base;
  base.attempted = true;
  base.corrupt_checkpoints_skipped = ctx.corrupt_checkpoints;
  base.wal_corrupt_frames = ctx.wal.corrupt_frames;
  base.wal_corrupt_segments = ctx.wal.corrupt_segments;

  std::unique_ptr<Engine> engine;
  durability::RecoveryReport rep = base;
  uint64_t digest_mismatches = 0;

  // Candidate loop: newest valid checkpoint, then older ones, finally a
  // bare WAL replay. A candidate that fails any integrity check is torn
  // down whole and the next one tried — corruption shortens the recovered
  // prefix, it never aborts recovery or mixes states.
  for (size_t ci = 0; ci <= ctx.manifests.size() && engine == nullptr; ++ci) {
    const bool wal_only = ci == ctx.manifests.size();
    const durability::Manifest* m = wal_only ? nullptr : &ctx.manifests[ci];
    std::unique_ptr<Engine> cand(new Engine(options, DeferDurabilityTag{}));
    rep = base;
    rep.digest_mismatches = digest_mismatches;

    bool ok = true;
    if (!wal_only) {
      for (const auto& s : m->sources) {
        if (cand->catalog_.Declare(s.name, s.decl) < 0) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const auto& qe : m->queries) {
          QueryOptions qo;
          qo.shards = qe.shards;
          qo.mode = qe.mode <= static_cast<uint8_t>(ExecMode::kUpa)
                        ? static_cast<ExecMode>(qe.mode)
                        : ExecMode::kUpa;
          const RegisterResult r = cand->RegisterSql(qe.name, qe.sql, qo);
          if (!r.ok || r.shards != qe.shards) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        // Re-inject the retained tuples into the exact shards that held
        // them (same shard count => same hashing, but the manifest layout
        // is authoritative). They carry wal_seq 0: their original
        // sequence numbers are at or below any future cut, so the next
        // checkpoint must capture them unconditionally.
        uint64_t retained = 0;
        std::shared_lock<std::shared_mutex> lock(cand->mu_);
        for (const auto& qe : m->queries) {
          RegisteredQuery* q = cand->registry_.Find(qe.name);
          for (int s = 0; s < qe.shards && q != nullptr; ++s) {
            for (const auto& ev :
                 qe.shard_states[static_cast<size_t>(s)].retained) {
              q->enqueued.fetch_add(1, std::memory_order_relaxed);
              q->shard(s).Enqueue(ev.stream, ev.tuple);
              ++retained;
            }
          }
        }
        rep.retained_replayed = retained;
      }
      if (ok) {
        cand->AdvanceTo(m->clock);
        // Digest verification: every rebuilt shard view must hash to what
        // the original engine recorded at the barrier — defense in depth
        // past the per-frame CRCs.
        std::shared_lock<std::shared_mutex> lock(cand->mu_);
        for (const auto& qe : m->queries) {
          RegisteredQuery* q = cand->registry_.Find(qe.name);
          std::vector<uint64_t> digests(static_cast<size_t>(qe.shards), 0);
          if (q == nullptr ||
              !BarrierQuery(q, m->clock, [&digests](int s, Pipeline& p) {
                digests[static_cast<size_t>(s)] = p.view().Digest();
              })) {
            ok = false;
            break;
          }
          for (int s = 0; s < qe.shards; ++s) {
            if (digests[static_cast<size_t>(s)] !=
                qe.shard_states[static_cast<size_t>(s)].view_digest) {
              ++digest_mismatches;
              ok = false;
              break;
            }
          }
          if (!ok) break;
        }
      }
      if (!ok) continue;  // Tear the candidate down, try the next one.
      rep.recovered_from_checkpoint = true;
      rep.checkpoint_id = m->id;
      rep.queries_restored = m->queries.size();
      rep.sources_restored = m->sources.size();
    } else {
      // WAL-only fallback: replay everything from sequence 1. If
      // checkpoints existed but none validated, or the log no longer
      // reaches back to the beginning (segments GC'd behind a checkpoint
      // that is now unreadable), state has been lost; say so rather than
      // replaying a gapped history.
      const bool wal_has = !ctx.wal.records.empty();
      const bool reaches_start = wal_has && ctx.wal.records.begin()->first == 1;
      rep.data_loss =
          ctx.checkpoint_files > 0 || (wal_has && !reaches_start);
    }

    bool gap = false;
    const std::vector<const durability::WalRecord*> suffix =
        durability::WalSuffix(ctx, wal_only ? 0 : m->wal_seq, &gap);
    for (const durability::WalRecord* rec : suffix) {
      cand->ApplyWalRecord(*rec, &rep);
    }
    rep.wal_records_replayed = suffix.size();
    rep.wal_gap = gap;
    cand->FlushPendingBatch();  // Replayed rows must not sit coalesced.
    engine = std::move(cand);
  }
  rep.digest_mismatches = digest_mismatches;

  // Seed the checkpoint bookkeeping from what survived on disk, then
  // resume the log past everything ever written (valid or torn) so new
  // records never collide with old files.
  {
    std::lock_guard<std::mutex> lock(engine->durability_mu_);
    engine->next_checkpoint_id_ = ctx.max_checkpoint_id + 1;
    for (auto it = ctx.manifests.rbegin(); it != ctx.manifests.rend(); ++it) {
      engine->checkpoint_history_.emplace_back(it->id, it->wal_seq);
    }
  }
  engine->AttachWal(ctx.wal.max_seq + 1);

  rep.clock = engine->clock();
  rep.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (rep.note.empty()) {
    if (rep.recovered_from_checkpoint) {
      rep.note = "recovered from checkpoint " +
                 std::to_string(rep.checkpoint_id) + " + " +
                 std::to_string(rep.wal_records_replayed) + " WAL records";
    } else if (rep.wal_records_replayed > 0) {
      rep.note = "WAL-only replay of " +
                 std::to_string(rep.wal_records_replayed) + " records";
    } else if (rep.data_loss) {
      rep.note = "no recoverable state (data loss); started empty";
    } else {
      rep.note = "fresh start (empty durability directory)";
    }
  }
  engine->recovery_report_ = rep;
  if (report != nullptr) *report = rep;
  return engine;
}

bool Engine::Stats(const std::string& name, PipelineStats* out) const {
  UPA_CHECK(out != nullptr);
  *out = PipelineStats{};
  std::shared_lock<std::shared_mutex> lock(mu_);
  const RegisteredQuery* q = registry_.Find(name);
  if (q == nullptr) return false;
  for (int i = 0; i < q->num_shards(); ++i) {
    *out += q->shard(i).Metrics(i).stats;
  }
  return true;
}

EngineMetrics Engine::Metrics() const {
  EngineMetrics m;
  m.clock = clock();
  m.durability.enabled = !options_.durability.dir.empty();
  if (m.durability.enabled) {
    DurabilityMetrics& d = m.durability;
    if (wal_ != nullptr) {
      d.wal_records = wal_->records();
      d.wal_bytes = wal_->bytes();
      d.wal_segments = wal_->segments();
      d.wal_torn_writes = wal_->torn_writes();
      d.wal_failed = wal_->failed();
    }
    {
      std::lock_guard<std::mutex> lock(durability_mu_);
      d.checkpoints = checkpoints_written_;
      d.checkpoint_failures = checkpoint_failures_;
      d.last_checkpoint_id = last_checkpoint_id_;
      d.last_checkpoint_bytes = last_checkpoint_bytes_;
      d.last_checkpoint_seconds = last_checkpoint_seconds_;
      d.last_retained_tuples = last_retained_tuples_;
      d.last_truncated_tuples = last_truncated_tuples_;
    }
    const durability::RecoveryReport& r = recovery_report_;
    d.recovered = r.attempted;
    d.recovery_checkpoint_id = r.checkpoint_id;
    d.recovery_wal_records_replayed = r.wal_records_replayed;
    d.recovery_retained_replayed = r.retained_replayed;
    d.recovery_corrupt_checkpoints_skipped = r.corrupt_checkpoints_skipped;
    d.recovery_digest_mismatches = r.digest_mismatches;
    d.recovery_wal_corrupt_frames = r.wal_corrupt_frames;
    d.recovery_wal_gap = r.wal_gap;
    d.recovery_data_loss = r.data_loss;
    d.recovery_seconds = r.seconds;
  }
  const auto now = std::chrono::steady_clock::now();
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& q : registry_.queries()) {
    if (m.durability.enabled && q->sql().empty()) {
      ++m.durability.non_durable_queries;
    }
    QueryMetrics qm;
    qm.name = q->name();
    qm.shards = q->num_shards();
    qm.partitioned = q->scheme().partitionable;
    qm.partition_note = q->scheme().ToString();
    qm.enqueued = q->enqueued.load(std::memory_order_relaxed);
    qm.degraded = q->degraded.load(std::memory_order_relaxed);
    qm.degrade_events = q->degrade_events.load(std::memory_order_relaxed);
    qm.stall_events = q->stall_events.load(std::memory_order_relaxed);
    const SubscriptionHub& hub = q->hub();
    qm.subscribers = hub.Count();
    qm.sub_deltas = hub.deltas_emitted.load(std::memory_order_relaxed);
    qm.sub_watermarks = hub.watermarks_emitted.load(std::memory_order_relaxed);
    qm.sub_resets = hub.resets_emitted.load(std::memory_order_relaxed);
    for (int i = 0; i < q->num_shards(); ++i) {
      ShardMetrics sm = q->shard(i).Metrics(i);
      qm.processed += sm.processed;
      qm.dropped += sm.dropped;
      qm.queue_depth += sm.queue_depth;
      qm.state_bytes += sm.state_bytes;
      qm.view_size += sm.view_size;
      qm.restarts += sm.restarts;
      qm.stats += sm.stats;
      qm.heavy += sm.heavy;
      if (sm.profiled) {
        qm.profiled = true;
        qm.phases += sm.phases;
      }
      qm.per_shard.push_back(std::move(sm));
    }
    qm.wall_seconds =
        std::chrono::duration<double>(now - q->registered_at()).count();
    qm.tuples_per_second = qm.wall_seconds > 0.0
                               ? static_cast<double>(qm.processed) /
                                     qm.wall_seconds
                               : 0.0;
    m.queries.push_back(std::move(qm));
  }
  return m;
}

void Engine::Stop() {
  if (stopped_.load(std::memory_order_relaxed)) return;
  FlushHeld();  // Before stopping ingest: the held tuple must not vanish.
  FlushPendingBatch();  // Likewise for coalesced rows.
  if (stopped_.exchange(true)) return;
  // The checkpointer goes first (it barriers shards), then the watchdog
  // (so no restart races shard shutdown).
  {
    std::lock_guard<std::mutex> lock(checkpointer_mu_);
    checkpointer_stop_ = true;
  }
  checkpointer_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& q : registry_.queries()) {
      for (int i = 0; i < q->num_shards(); ++i) q->shard(i).Stop();
    }
  }
  if (wal_ != nullptr) {
    if (options_.durability.seal_on_close) {
      wal_->Close();
    } else {
      wal_->Abandon();  // Leave the .open tail as a crash would.
    }
  }
}

void Engine::CheckpointLoop() {
  std::unique_lock<std::mutex> lock(checkpointer_mu_);
  while (!checkpointer_stop_) {
    checkpointer_cv_.wait_for(
        lock,
        std::chrono::milliseconds(options_.durability.checkpoint_interval_ms),
        [this] { return checkpointer_stop_; });
    if (checkpointer_stop_) return;
    lock.unlock();
    Checkpoint();
    lock.lock();
  }
}

void Engine::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.watchdog_interval_ms),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();
    PollSupervisor();
    lock.lock();
  }
}

void Engine::PollSupervisor() {
  const auto now = std::chrono::steady_clock::now();
  const auto stall_after = std::chrono::milliseconds(options_.stall_timeout_ms);
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::lock_guard<std::mutex> watch_lock(watch_mu_);
  for (const auto& q : registry_.queries()) {
    size_t worst_depth = 0;
    size_t capacity = 0;
    for (int i = 0; i < q->num_shards(); ++i) {
      ShardExecutor& sh = q->shard(i);
      if (sh.crashed()) sh.Restart();
      worst_depth = std::max(worst_depth, sh.queue_depth());
      capacity = sh.queue_capacity();
      auto [it, inserted] = watch_.try_emplace(&sh);
      StallWatch& w = it->second;
      const uint64_t p = sh.processed();
      if (inserted || p != w.processed || sh.queue_depth() == 0 ||
          sh.crashed()) {
        w.processed = p;
        w.since = now;
        w.flagged = false;
      } else if (!w.flagged && now - w.since >= stall_after) {
        w.flagged = true;
        q->stall_events.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (capacity == 0) continue;
    const double frac =
        static_cast<double>(worst_depth) / static_cast<double>(capacity);
    if (!q->degraded.load(std::memory_order_relaxed) &&
        frac >= options_.degrade_high_watermark) {
      q->degraded.store(true, std::memory_order_relaxed);
      q->degrade_events.fetch_add(1, std::memory_order_relaxed);
      for (int i = 0; i < q->num_shards(); ++i) q->shard(i).SetDegraded(true);
    } else if (q->degraded.load(std::memory_order_relaxed) &&
               frac <= options_.degrade_low_watermark) {
      q->degraded.store(false, std::memory_order_relaxed);
      for (int i = 0; i < q->num_shards(); ++i) q->shard(i).SetDegraded(false);
    }
  }
}

}  // namespace upa
