#include "engine/fault.h"

#include <utility>

#include "common/rng.h"

namespace upa {

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillShard:
      return "kill-shard";
    case FaultKind::kAllocFail:
      return "alloc-fail";
    case FaultKind::kDelayBatch:
      return "delay-batch";
    case FaultKind::kDropIngest:
      return "drop-ingest";
    case FaultKind::kDuplicateIngest:
      return "duplicate-ingest";
    case FaultKind::kReorderIngest:
      return "reorder-ingest";
    case FaultKind::kTornWalWrite:
      return "torn-wal-write";
    case FaultKind::kNetRst:
      return "net-rst";
    case FaultKind::kNetDelay:
      return "net-delay";
  }
  return "?";
}

FaultInjector::FaultInjector(std::vector<FaultEvent> schedule) {
  schedule_.reserve(schedule.size());
  for (FaultEvent& e : schedule) schedule_.push_back({std::move(e), false});
}

namespace {

bool Matches(const FaultEvent& e, const std::string& query, int shard) {
  if (!e.query.empty() && e.query != query) return false;
  if (e.shard >= 0 && e.shard != shard) return false;
  return true;
}

}  // namespace

bool FaultInjector::ShouldCrash(const std::string& query, int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t count = ++tuple_counts_[{query, shard}];
  for (PendingEvent& p : schedule_) {
    if (p.fired) continue;
    if (p.event.kind != FaultKind::kKillShard &&
        p.event.kind != FaultKind::kAllocFail) {
      continue;
    }
    if (!Matches(p.event, query, shard)) continue;
    if (count < p.event.at_count) continue;
    p.fired = true;
    ++fired_[p.event.kind];
    return true;
  }
  return false;
}

int FaultInjector::NextBatchDelayMs(const std::string& query, int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t count = ++batch_counts_[{query, shard}];
  for (PendingEvent& p : schedule_) {
    if (p.event.kind != FaultKind::kDelayBatch) continue;
    if (!Matches(p.event, query, shard)) continue;
    if (p.event.repeat) {
      if (p.event.at_count == 0 || count % p.event.at_count != 0) continue;
    } else {
      if (p.fired || count < p.event.at_count) continue;
      p.fired = true;
    }
    ++fired_[FaultKind::kDelayBatch];
    return p.event.param;
  }
  return 0;
}

FaultInjector::IngestAction FaultInjector::OnIngest() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t count = ++ingest_count_;
  for (PendingEvent& p : schedule_) {
    if (p.fired) continue;
    IngestAction action;
    switch (p.event.kind) {
      case FaultKind::kDropIngest:
        action = IngestAction::kDrop;
        break;
      case FaultKind::kDuplicateIngest:
        action = IngestAction::kDuplicate;
        break;
      case FaultKind::kReorderIngest:
        action = IngestAction::kReorder;
        break;
      default:
        continue;
    }
    if (count < p.event.at_count) continue;
    p.fired = true;
    ++fired_[p.event.kind];
    return action;
  }
  return IngestAction::kDeliver;
}

bool FaultInjector::TearWalWrite(size_t frame_bytes, size_t* keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t count = ++wal_count_;
  for (PendingEvent& p : schedule_) {
    if (p.fired) continue;
    if (p.event.kind != FaultKind::kTornWalWrite) continue;
    if (count < p.event.at_count) continue;
    p.fired = true;
    ++fired_[FaultKind::kTornWalWrite];
    size_t keep = p.event.param >= 0 ? static_cast<size_t>(p.event.param) : 0;
    if (keep >= frame_bytes) keep = frame_bytes - 1;  // Must actually tear.
    *keep_bytes = keep;
    return true;
  }
  return false;
}

FaultInjector::NetAction FaultInjector::OnNetBytes(int dir, size_t n) {
  NetAction action;
  if (dir != 0 && dir != 1) return action;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t count = (net_bytes_[dir] += n);
  for (PendingEvent& p : schedule_) {
    if (p.event.kind != FaultKind::kNetRst &&
        p.event.kind != FaultKind::kNetDelay) {
      continue;
    }
    if (p.event.shard >= 0 && p.event.shard != dir) continue;
    if (p.event.kind == FaultKind::kNetDelay && p.event.repeat) {
      // Re-fires each time the counter crosses a multiple of at_count
      // (chunk granularity: one firing per crossing, however large the
      // chunk).
      if (p.event.at_count == 0) continue;
      if (count / p.event.at_count == (count - n) / p.event.at_count) continue;
      ++fired_[FaultKind::kNetDelay];
      action.delay_ms += p.event.param;
      continue;
    }
    if (p.fired || count < p.event.at_count) continue;
    if (p.event.kind == FaultKind::kNetRst) {
      // At most one reset per call: the triggering chunk kills one
      // connection, so a second due event stays armed for a later chunk
      // and fired(kNetRst) matches the resets actually injected.
      if (action.rst) continue;
      action.rst = true;
    } else {
      action.delay_ms += p.event.param;
    }
    p.fired = true;
    ++fired_[p.event.kind];
  }
  return action;
}

uint64_t FaultInjector::fired(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fired_.find(kind);
  return it == fired_.end() ? 0 : it->second;
}

uint64_t FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [kind, n] : fired_) total += n;
  return total;
}

std::vector<FaultEvent> FaultInjector::RandomSchedule(
    uint64_t seed, const std::vector<std::string>& queries, int shards,
    uint64_t expected_events, bool ingest_faults) {
  Rng rng(seed);
  std::vector<FaultEvent> schedule;
  const uint64_t span = expected_events > 2 ? expected_events : 2;
  const auto random_query = [&]() -> std::string {
    if (queries.empty()) return "";
    return queries[static_cast<size_t>(rng.NextBelow(queries.size()))];
  };
  // One or two mid-run kills: the core recovery scenario.
  const int kills = 1 + static_cast<int>(rng.NextBelow(2));
  for (int i = 0; i < kills; ++i) {
    FaultEvent e;
    e.kind = rng.NextBool(0.25) ? FaultKind::kAllocFail : FaultKind::kKillShard;
    e.query = random_query();
    e.shard = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(
        shards > 0 ? shards : 1)));
    e.at_count = 1 + rng.NextBelow(span);
    schedule.push_back(e);
  }
  // A recurring batch delay on one shard: builds queue depth, which is
  // what exercises the overload watermark and the stall detector.
  if (rng.NextBool(0.7)) {
    FaultEvent e;
    e.kind = FaultKind::kDelayBatch;
    e.query = random_query();
    e.shard = -1;
    e.at_count = 2 + rng.NextBelow(6);
    e.param = 1 + static_cast<int>(rng.NextBelow(3));
    e.repeat = true;
    schedule.push_back(e);
  }
  if (ingest_faults) {
    const int n = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < n; ++i) {
      FaultEvent e;
      switch (rng.NextBelow(3)) {
        case 0:
          e.kind = FaultKind::kDropIngest;
          break;
        case 1:
          e.kind = FaultKind::kDuplicateIngest;
          break;
        default:
          e.kind = FaultKind::kReorderIngest;
          break;
      }
      e.at_count = 1 + rng.NextBelow(span);
      schedule.push_back(e);
    }
  }
  return schedule;
}

std::vector<FaultEvent> FaultInjector::RandomNetSchedule(
    uint64_t seed, uint64_t expected_bytes_c2s, uint64_t expected_bytes_s2c) {
  Rng rng(seed);
  std::vector<FaultEvent> schedule;
  const uint64_t span[2] = {expected_bytes_c2s > 2 ? expected_bytes_c2s : 2,
                            expected_bytes_s2c > 2 ? expected_bytes_s2c : 2};
  // One to three connection resets at random byte offsets: the core
  // reconnect-with-resume scenario. Biased toward the fat
  // server->client direction, where a reset can strand replayable
  // subscription frames.
  const int rsts = 1 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < rsts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kNetRst;
    e.shard = rng.NextBool(0.35) ? 0 : 1;
    e.at_count = 1 + rng.NextBelow(span[e.shard]);
    schedule.push_back(e);
  }
  // A recurring short stall on one direction: stretches frames across
  // the reconnect window and exercises the client's whole-frame read
  // deadline.
  if (rng.NextBool(0.6)) {
    FaultEvent e;
    e.kind = FaultKind::kNetDelay;
    e.shard = static_cast<int>(rng.NextBelow(2));
    e.at_count = 1 + span[e.shard] / (2 + rng.NextBelow(6));
    e.param = 1 + static_cast<int>(rng.NextBelow(3));
    e.repeat = true;
    schedule.push_back(e);
  }
  return schedule;
}

}  // namespace upa
