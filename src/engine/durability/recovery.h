#ifndef UPA_ENGINE_DURABILITY_RECOVERY_H_
#define UPA_ENGINE_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "engine/durability/checkpoint.h"
#include "engine/durability/wal.h"

namespace upa {
namespace durability {

/// What Engine::StartFromCheckpoint did and found. Every counter here is
/// also exported as a `upa_recovery_*` Prometheus series.
struct RecoveryReport {
  bool attempted = false;   ///< StartFromCheckpoint ran on this engine.
  bool recovered_from_checkpoint = false;
  uint64_t checkpoint_id = 0;  ///< Manifest used (0: WAL-only or fresh).
  /// Checkpoint files skipped because they failed validation (magic, CRC,
  /// body decode, missing commit marker).
  uint64_t corrupt_checkpoints_skipped = 0;
  /// Candidates rejected because a replayed replica's view digest did not
  /// match the manifest (defense in depth past the CRCs).
  uint64_t digest_mismatches = 0;
  uint64_t wal_records_replayed = 0;  ///< Suffix records applied, any type.
  uint64_t wal_ingest_replayed = 0;   ///< Of those, ingest records.
  uint64_t wal_corrupt_frames = 0;    ///< Invalid frames seen by the scan.
  uint64_t wal_corrupt_segments = 0;  ///< Segment files with a bad magic.
  /// Valid WAL records existed beyond a sequence hole; they were NOT
  /// applied (the recovered state is a strict prefix of the original
  /// run, never a gapped one).
  bool wal_gap = false;
  /// No usable checkpoint and the WAL does not reach back to sequence 1
  /// (e.g. every checkpoint corrupted after segments were GC'd): the
  /// engine starts empty rather than guessing.
  bool data_loss = false;
  uint64_t retained_replayed = 0;  ///< Checkpoint tuples re-injected.
  uint64_t queries_restored = 0;
  uint64_t queries_unregistered = 0;  ///< Replayed kUnregisterQuery records.
  uint64_t sources_restored = 0;
  Time clock = -1;       ///< Engine clock after recovery.
  double seconds = 0.0;  ///< Wall time of the whole recovery.
  std::string note;      ///< Human-readable outcome summary.
};

/// Everything recovery needs, loaded from disk in one pass: all valid
/// checkpoint manifests (newest first) and every valid WAL frame. The
/// engine walks candidates through this context instead of re-reading
/// files per attempt.
struct RecoveryContext {
  std::vector<Manifest> manifests;  ///< Valid only, newest id first.
  WalScanResult wal;
  uint64_t corrupt_checkpoints = 0;  ///< Listed files failing validation.
  size_t checkpoint_files = 0;       ///< Listed files, valid or not.
  uint64_t max_checkpoint_id = 0;    ///< Across all listed files.
};

RecoveryContext LoadRecoveryContext(const std::string& dir);

/// The longest consecutive run of WAL records with seq > after_seq,
/// starting at after_seq + 1 (pointers into `ctx.wal`; valid while `ctx`
/// lives). Sets *gap when valid records exist beyond the run's end --
/// those are unreachable across the hole and must be treated as lost.
std::vector<const WalRecord*> WalSuffix(const RecoveryContext& ctx,
                                        uint64_t after_seq, bool* gap);

}  // namespace durability
}  // namespace upa

#endif  // UPA_ENGINE_DURABILITY_RECOVERY_H_
