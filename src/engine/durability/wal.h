#ifndef UPA_ENGINE_DURABILITY_WAL_H_
#define UPA_ENGINE_DURABILITY_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "engine/fault.h"
#include "sql/parser.h"

namespace upa {
namespace durability {

/// On-disk write-ahead log of everything that drives engine state: source
/// declarations, SQL query registrations, ingested tuples, and clock
/// advances. Replaying a WAL prefix into a fresh engine reproduces the
/// engine state at the corresponding point of the original run, which is
/// the whole recovery story: checkpoints merely let replay start from a
/// recent cut (they persist the window-bounded retained tuples the
/// pattern horizons say are still live) instead of from sequence 1.
///
/// Layout: `<dir>/wal/wal-<first-seq>.log` (sealed) and `.open` (active).
/// Each segment starts with an 8-byte magic, followed by CRC32C-framed
/// records:
///
///   u32 payload-length | u32 masked-crc32c(payload) | payload
///
/// and each payload is `u64 seq | u8 type | body` (see serde.h for the
/// primitive encodings). Records carry globally contiguous sequence
/// numbers starting at 1. Segments are named by the first sequence number
/// they contain, appended with one write() per record (a process crash
/// can therefore tear at most the final frame), and sealed by an
/// atomic rename from `.open` to `.log`; a recovering writer never
/// appends to an existing file, it starts a fresh segment at the next
/// sequence number, so torn tails stay inert on disk and are skipped by
/// the frame validation on every later scan.
enum class WalRecordType : uint8_t {
  kIngest = 0,
  kAdvance = 1,
  kDeclareSource = 2,
  kRegisterQuery = 3,
  kUnregisterQuery = 4,
};

/// One decoded WAL record. Which fields are meaningful depends on `type`.
struct WalRecord {
  uint64_t seq = 0;
  WalRecordType type = WalRecordType::kIngest;

  // kIngest.
  int stream = -1;
  Tuple tuple;

  // kAdvance.
  Time advance_to = -1;

  // kDeclareSource.
  std::string source_name;
  SourceDecl source;

  // kRegisterQuery (kUnregisterQuery uses query_name only).
  std::string query_name;
  std::string sql;
  int shards = 0;
  uint8_t mode = 0;  ///< static_cast of ExecMode.
};

/// Serializes `payload` as one CRC32C frame appended to `out`.
void AppendFrame(std::string* out, const std::string& payload);

/// Encodes/decodes the seq|type|body payload (no framing). DecodeRecord
/// returns false on any malformed body, including trailing garbage.
std::string EncodeRecord(const WalRecord& rec);
bool DecodeRecord(const std::string& payload, WalRecord* out);

/// Iterates frames of an in-memory buffer (used for both WAL segments and
/// checkpoint files, which share the frame format). Next() returns false
/// at the end of the buffer *or* at the first frame whose length or
/// checksum does not validate; `clean_end()` distinguishes the two.
class FrameCursor {
 public:
  FrameCursor(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit FrameCursor(const std::string& buf)
      : FrameCursor(buf.data(), buf.size()) {}

  /// Advances to the next frame; on success *payload points into the
  /// buffer (valid until the buffer dies).
  bool Next(std::string* payload);

  /// True when iteration stopped exactly at the end of the buffer rather
  /// than at a torn or corrupt frame.
  bool clean_end() const { return clean_end_; }

 private:
  const char* p_;
  const char* end_;
  bool clean_end_ = false;
};

struct WalWriterOptions {
  /// Rotate to a new segment once the active one exceeds this size.
  size_t segment_bytes = 1 << 20;
  /// fsync segments on seal/close and the directory on renames. Off by
  /// default: the durability target is process crashes (every record is
  /// down a write() syscall before the engine acts on it); turning this
  /// on extends the guarantee to OS crashes at a per-seal cost.
  bool fsync = false;
};

/// Append side. Thread-safe (the engine appends from concurrent producer
/// threads under its shared registration lock). After any I/O failure or
/// an injected torn write the writer goes into a terminal failed state:
/// further appends return 0 and the engine keeps running undurably, which
/// the metrics surface as `upa_checkpoint_wal_failed`.
class WalWriter {
 public:
  /// `faults` (borrowed, may be null) provides the kTornWalWrite hook.
  WalWriter(std::string dir, WalWriterOptions options, FaultInjector* faults);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates `<dir>/wal/` if needed and opens a fresh segment whose first
  /// record will carry `next_seq`. Returns false (failed state) on I/O
  /// error.
  bool Start(uint64_t next_seq);

  /// Appends one record, assigning it the next sequence number. Returns
  /// the assigned number, or 0 when the writer is failed (the record was
  /// not durably logged).
  uint64_t Append(WalRecord rec);

  /// Seals the active segment (rename to .log). Idempotent.
  void Close();

  /// Closes the active segment WITHOUT sealing it: the `.open` file stays
  /// behind exactly as a process crash would leave it. Test hook backing
  /// DurabilityOptions::seal_on_close = false; further appends return 0.
  void Abandon();

  /// Deletes sealed segments that a replay starting at `min_needed_seq +
  /// 1` can never need, i.e. segments entirely covered by retained
  /// checkpoints. The active segment is never deleted.
  void RemoveObsoleteSegments(uint64_t min_needed_seq);

  uint64_t last_seq() const;
  uint64_t records() const;
  uint64_t bytes() const;        ///< Payload + framing bytes appended.
  uint64_t segments() const;     ///< Segments created by this writer.
  uint64_t torn_writes() const;  ///< Injected kTornWalWrite faults fired.
  bool failed() const;

 private:
  bool OpenSegmentLocked(uint64_t first_seq);
  void SealLocked();
  void FailLocked();

  const std::string wal_dir_;
  const WalWriterOptions options_;
  FaultInjector* const faults_;

  mutable std::mutex mu_;
  int fd_ = -1;                 // Active segment, -1 when none.
  std::string open_path_;       // Path of the active .open file.
  uint64_t open_first_seq_ = 0;
  size_t open_bytes_ = 0;
  uint64_t last_seq_ = 0;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  uint64_t segments_ = 0;
  uint64_t torn_writes_ = 0;
  bool started_ = false;
  bool failed_ = false;
};

/// Result of scanning a WAL directory. `records` holds every frame that
/// validated, keyed by sequence number; contiguity is the *caller's*
/// judgement (recovery replays the longest consecutive run after its
/// checkpoint cut and treats anything beyond a hole as lost — the
/// prefix-not-garbage contract).
struct WalScanResult {
  std::map<uint64_t, WalRecord> records;
  uint64_t max_seq = 0;          ///< Highest seq seen in any valid frame.
  uint64_t corrupt_frames = 0;   ///< Frames dropped by length/CRC checks.
  uint64_t corrupt_segments = 0; ///< Files with a bad magic/unreadable.
  size_t segments = 0;           ///< Segment files visited.
  uint64_t bytes = 0;            ///< Bytes read.
};

/// Reads every segment of `<dir>/wal/` in sequence order. Within one
/// segment, reading stops at the first invalid frame (torn tail or bit
/// flip) and continues with the next segment -- a torn tail in a sealed-
/// by-recovery segment is a normal crash artifact, and later segments may
/// carry the continuation. Never throws; a missing directory scans empty.
WalScanResult ScanWal(const std::string& dir);

}  // namespace durability
}  // namespace upa

#endif  // UPA_ENGINE_DURABILITY_WAL_H_
