#ifndef UPA_ENGINE_DURABILITY_CHECKPOINT_H_
#define UPA_ENGINE_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/tuple.h"
#include "sql/parser.h"

namespace upa {
namespace durability {

/// Pattern-aware checkpoints.
///
/// A checkpoint does NOT persist operator state. It persists, per query
/// and per shard, the *retained ingest tuples*: the suffix of the shard's
/// input that is still inside the plan's recovery horizons. By the
/// paper's update-pattern expiration semantics (Sections 4-5) anything
/// older has expired out of every buffer and cannot influence results, so
/// replaying the retained tuples into a fresh replica reproduces the lost
/// state exactly -- the same argument that backs the watchdog's in-memory
/// shard Restart(). Horizons are per source (StreamRecoveryHorizons): a
/// WKS/WK stream consumed through a 250-unit window contributes 250 units
/// of tuples regardless of how large its neighbour's window is; relations,
/// count-window inputs and unwindowed streams are never truncated.
///
/// Consistency: the manifest is captured at a snapshot barrier. The engine
/// reads the WAL position S under its registration lock (no ingest can
/// interleave), enqueues a control on every shard, and each shard records
/// its retained tuples with WAL sequence <= S plus a digest of its view.
/// Recovery replays retained tuples (state <= S) and then the WAL suffix
/// (records > S); the sequence filter is what makes the two phases meet
/// exactly once.
///
/// File format: `ckpt-<id>.upac`, an 8-byte magic followed by the same
/// CRC32C frames as WAL segments: one header record, one record per
/// source, one per query (with all shard states inline), and a trailing
/// end record carrying the record count. A file missing its end record,
/// failing any CRC, or failing any body decode is rejected as a whole --
/// checkpoints are all-or-nothing, torn checkpoint writes are discarded
/// by validation and recovery falls back to the previous checkpoint.
/// Files are written to a temporary name and atomically renamed.

/// One retained ingest event of one shard.
struct RetainedEvent {
  int stream = -1;
  uint64_t wal_seq = 0;  ///< 0: predates the current WAL attachment.
  Tuple tuple;
};

/// State of one shard of one query at the checkpoint barrier.
struct ShardState {
  Time clock = -1;            ///< Barrier time the replica was ticked to.
  uint64_t view_digest = 0;   ///< ResultView::Digest() at the barrier.
  std::vector<RetainedEvent> retained;
};

struct QueryEntry {
  std::string name;
  std::string sql;
  int shards = 1;
  uint8_t mode = 0;  ///< static_cast of ExecMode.
  uint64_t retained_total = 0;   ///< Sum of shard retained counts.
  uint64_t truncated_total = 0;  ///< Tuples dropped by horizon truncation.
  std::vector<ShardState> shard_states;
};

struct SourceEntry {
  std::string name;
  SourceDecl decl;
};

struct Manifest {
  uint64_t id = 0;       ///< Monotone checkpoint number (file name).
  Time clock = -1;       ///< Engine clock at the barrier.
  uint64_t wal_seq = 0;  ///< S: WAL records <= S are covered by this state.
  std::vector<SourceEntry> sources;
  std::vector<QueryEntry> queries;
};

/// Serializes and atomically publishes `m` as `<dir>/ckpt-<id>.upac`.
/// On success *bytes_out (optional) receives the file size. `fsync`
/// extends durability to OS crashes.
bool WriteCheckpoint(const std::string& dir, const Manifest& m, bool fsync,
                     size_t* bytes_out, std::string* error);

/// Fully validates and decodes one checkpoint file; false on any
/// corruption (magic, CRC, body decode, missing end record, count
/// mismatch).
bool LoadCheckpoint(const std::string& path, Manifest* out);

/// Checkpoint files of `dir`, newest id first. Only names are parsed; a
/// listed file may still fail LoadCheckpoint.
std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir);

/// Deletes all but the newest `keep` checkpoint files.
void RemoveObsoleteCheckpoints(const std::string& dir, int keep);

}  // namespace durability
}  // namespace upa

#endif  // UPA_ENGINE_DURABILITY_CHECKPOINT_H_
