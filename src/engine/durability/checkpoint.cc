#include "engine/durability/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "engine/durability/wal.h"
#include "state/serde.h"

namespace upa {
namespace durability {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointMagic[8] = {'U', 'P', 'A', 'C', 'K', 'P', 'T', '1'};

/// Record kinds inside a checkpoint file.
enum class CkptRecord : uint8_t {
  kHeader = 0,
  kSource = 1,
  kQuery = 2,
  kEnd = 3,
};

std::string CheckpointName(uint64_t id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ckpt-%020llu.upac",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Parses the id out of a checkpoint file name; 0 = not a checkpoint.
uint64_t CheckpointId(const std::string& name) {
  if (name.rfind("ckpt-", 0) != 0) return 0;
  if (name.size() < 6 + 5 ||
      name.compare(name.size() - 5, 5, ".upac") != 0) {
    return 0;
  }
  uint64_t id = 0;
  for (size_t i = 5; i < name.size() - 5; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

void EncodeSource(std::string* out, const SourceEntry& s) {
  serde::PutU8(out, static_cast<uint8_t>(CkptRecord::kSource));
  serde::PutString(out, s.name);
  serde::PutU32(out, static_cast<uint32_t>(s.decl.stream_id));
  serde::PutU8(out, static_cast<uint8_t>(s.decl.kind));
  serde::PutU32(out, static_cast<uint32_t>(s.decl.schema.fields().size()));
  for (const Field& f : s.decl.schema.fields()) {
    serde::PutString(out, f.name);
    serde::PutU8(out, static_cast<uint8_t>(f.type));
  }
}

bool DecodeSource(serde::Reader* r, SourceEntry* s) {
  uint32_t id, nfields;
  uint8_t kind;
  if (!r->GetString(&s->name) || !r->GetU32(&id) || !r->GetU8(&kind) ||
      !r->GetU32(&nfields)) {
    return false;
  }
  if (kind > static_cast<uint8_t>(SourceKind::kRelation)) return false;
  if (nfields > r->remaining()) return false;
  s->decl.stream_id = static_cast<int>(id);
  s->decl.kind = static_cast<SourceKind>(kind);
  std::vector<Field> fields;
  fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    Field f;
    uint8_t type;
    if (!r->GetString(&f.name) || !r->GetU8(&type)) return false;
    if (type > static_cast<uint8_t>(ValueType::kString)) return false;
    f.type = static_cast<ValueType>(type);
    fields.push_back(std::move(f));
  }
  s->decl.schema = Schema(std::move(fields));
  return true;
}

void EncodeQuery(std::string* out, const QueryEntry& q) {
  serde::PutU8(out, static_cast<uint8_t>(CkptRecord::kQuery));
  serde::PutString(out, q.name);
  serde::PutString(out, q.sql);
  serde::PutU32(out, static_cast<uint32_t>(q.shards));
  serde::PutU8(out, q.mode);
  serde::PutU64(out, q.retained_total);
  serde::PutU64(out, q.truncated_total);
  serde::PutU32(out, static_cast<uint32_t>(q.shard_states.size()));
  for (const ShardState& s : q.shard_states) {
    serde::PutI64(out, s.clock);
    serde::PutU64(out, s.view_digest);
    serde::PutU64(out, static_cast<uint64_t>(s.retained.size()));
    for (const RetainedEvent& e : s.retained) {
      serde::PutU32(out, static_cast<uint32_t>(e.stream));
      serde::PutU64(out, e.wal_seq);
      serde::PutTuple(out, e.tuple);
    }
  }
}

bool DecodeQuery(serde::Reader* r, QueryEntry* q) {
  uint32_t shards, nstates;
  if (!r->GetString(&q->name) || !r->GetString(&q->sql) ||
      !r->GetU32(&shards) || !r->GetU8(&q->mode) ||
      !r->GetU64(&q->retained_total) || !r->GetU64(&q->truncated_total) ||
      !r->GetU32(&nstates)) {
    return false;
  }
  q->shards = static_cast<int>(shards);
  // The manifest records one state per shard; a mismatch is corruption.
  if (nstates != shards || nstates > r->remaining()) return false;
  q->shard_states.clear();
  q->shard_states.reserve(nstates);
  for (uint32_t i = 0; i < nstates; ++i) {
    ShardState s;
    uint64_t nretained;
    if (!r->GetI64(&s.clock) || !r->GetU64(&s.view_digest) ||
        !r->GetU64(&nretained)) {
      return false;
    }
    if (nretained > r->remaining()) return false;
    s.retained.reserve(nretained);
    for (uint64_t j = 0; j < nretained; ++j) {
      RetainedEvent e;
      uint32_t stream;
      if (!r->GetU32(&stream) || !r->GetU64(&e.wal_seq) ||
          !r->GetTuple(&e.tuple)) {
        return false;
      }
      e.stream = static_cast<int>(stream);
      s.retained.push_back(std::move(e));
    }
    q->shard_states.push_back(std::move(s));
  }
  return true;
}

}  // namespace

bool WriteCheckpoint(const std::string& dir, const Manifest& m, bool fsync,
                     size_t* bytes_out, std::string* error) {
  std::string data(kCheckpointMagic, sizeof(kCheckpointMagic));
  std::string payload;

  payload.push_back(static_cast<char>(CkptRecord::kHeader));
  serde::PutU64(&payload, m.id);
  serde::PutI64(&payload, m.clock);
  serde::PutU64(&payload, m.wal_seq);
  serde::PutU32(&payload, static_cast<uint32_t>(m.sources.size()));
  serde::PutU32(&payload, static_cast<uint32_t>(m.queries.size()));
  AppendFrame(&data, payload);
  uint32_t frames = 1;

  for (const SourceEntry& s : m.sources) {
    payload.clear();
    EncodeSource(&payload, s);
    AppendFrame(&data, payload);
    ++frames;
  }
  for (const QueryEntry& q : m.queries) {
    payload.clear();
    EncodeQuery(&payload, q);
    AppendFrame(&data, payload);
    ++frames;
  }
  // End record: its presence is the commit marker (a truncated file has
  // no way to present both a valid frame chain and the right count).
  payload.clear();
  serde::PutU8(&payload, static_cast<uint8_t>(CkptRecord::kEnd));
  serde::PutU32(&payload, frames);
  AppendFrame(&data, payload);

  const fs::path final_path = fs::path(dir) / CheckpointName(m.id);
  const fs::path tmp_path = final_path.string() + ".tmp";
  const int fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) *error = "open failed: " + tmp_path.string();
    return false;
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      ::close(fd);
      std::error_code ec;
      fs::remove(tmp_path, ec);
      if (error) *error = "write failed: " + tmp_path.string();
      return false;
    }
    off += static_cast<size_t>(n);
  }
  if (fsync) ::fsync(fd);
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    if (error) *error = "rename failed: " + final_path.string();
    return false;
  }
  if (fsync) {
    const int dirfd = ::open(dir.c_str(), O_RDONLY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
  if (bytes_out) *bytes_out = data.size();
  return true;
}

bool LoadCheckpoint(const std::string& path, Manifest* out) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (!in.good() && !in.eof()) return false;
  if (data.size() < sizeof(kCheckpointMagic) ||
      std::memcmp(data.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return false;
  }
  FrameCursor cursor(data.data() + sizeof(kCheckpointMagic),
                     data.size() - sizeof(kCheckpointMagic));
  std::string payload;
  *out = Manifest{};
  uint32_t frames = 0;
  bool have_header = false;
  bool have_end = false;
  uint32_t end_count = 0;
  uint32_t nsources = 0;
  uint32_t nqueries = 0;
  while (cursor.Next(&payload)) {
    if (have_end) return false;  // Frames after the end marker: corrupt.
    serde::Reader r(payload);
    uint8_t kind;
    if (!r.GetU8(&kind)) return false;
    switch (static_cast<CkptRecord>(kind)) {
      case CkptRecord::kHeader: {
        if (have_header) return false;
        have_header = true;
        if (!r.GetU64(&out->id) || !r.GetI64(&out->clock) ||
            !r.GetU64(&out->wal_seq) || !r.GetU32(&nsources) ||
            !r.GetU32(&nqueries) || !r.AtEnd()) {
          return false;
        }
        out->sources.reserve(std::min<uint32_t>(nsources, 1024));
        out->queries.reserve(std::min<uint32_t>(nqueries, 1024));
        break;
      }
      case CkptRecord::kSource: {
        if (!have_header) return false;
        SourceEntry s;
        if (!DecodeSource(&r, &s) || !r.AtEnd()) return false;
        out->sources.push_back(std::move(s));
        break;
      }
      case CkptRecord::kQuery: {
        if (!have_header) return false;
        QueryEntry q;
        if (!DecodeQuery(&r, &q) || !r.AtEnd()) return false;
        out->queries.push_back(std::move(q));
        break;
      }
      case CkptRecord::kEnd: {
        if (!have_header) return false;
        have_end = true;
        if (!r.GetU32(&end_count) || !r.AtEnd()) return false;
        break;
      }
      default:
        return false;
    }
    ++frames;
  }
  if (!cursor.clean_end() || !have_header || !have_end) return false;
  // The end record counts every frame before it, and the header's section
  // counts must match what was actually decoded.
  if (end_count != frames - 1) return false;
  if (out->sources.size() != nsources || out->queries.size() != nqueries) {
    return false;
  }
  return true;
}

std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const uint64_t id = CheckpointId(entry.path().filename().string());
    if (id > 0) out.emplace_back(id, entry.path().string());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

void RemoveObsoleteCheckpoints(const std::string& dir, int keep) {
  if (keep < 1) keep = 1;
  auto checkpoints = ListCheckpoints(dir);
  std::error_code ec;
  for (size_t i = static_cast<size_t>(keep); i < checkpoints.size(); ++i) {
    fs::remove(checkpoints[i].second, ec);
  }
}

}  // namespace durability
}  // namespace upa
