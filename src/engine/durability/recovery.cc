#include "engine/durability/recovery.h"

#include <algorithm>

namespace upa {
namespace durability {

RecoveryContext LoadRecoveryContext(const std::string& dir) {
  RecoveryContext ctx;
  const auto listed = ListCheckpoints(dir);
  ctx.checkpoint_files = listed.size();
  for (const auto& [id, path] : listed) {
    ctx.max_checkpoint_id = std::max(ctx.max_checkpoint_id, id);
    Manifest m;
    if (LoadCheckpoint(path, &m) && m.id == id) {
      ctx.manifests.push_back(std::move(m));
    } else {
      ++ctx.corrupt_checkpoints;
    }
  }
  // ListCheckpoints returns newest first; keep that order for candidates.
  ctx.wal = ScanWal(dir);
  return ctx;
}

std::vector<const WalRecord*> WalSuffix(const RecoveryContext& ctx,
                                        uint64_t after_seq, bool* gap) {
  std::vector<const WalRecord*> out;
  uint64_t seq = after_seq + 1;
  for (auto it = ctx.wal.records.find(seq); it != ctx.wal.records.end();
       it = ctx.wal.records.find(++seq)) {
    out.push_back(&it->second);
  }
  // Anything valid past the stopping point sits behind a hole that
  // corruption (or GC of an intermediate segment) punched into the
  // sequence; applying it would fabricate a history that never ran.
  *gap = !ctx.wal.records.empty() && ctx.wal.max_seq >= seq;
  return out;
}

}  // namespace durability
}  // namespace upa
