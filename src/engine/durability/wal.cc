#include "engine/durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32c.h"
#include "state/serde.h"

namespace upa {
namespace durability {
namespace {

namespace fs = std::filesystem;

constexpr char kSegmentMagic[8] = {'U', 'P', 'A', 'W', 'A', 'L', '1', '\n'};
constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 masked CRC.
/// Upper bound on one payload; a corrupted length field larger than this
/// is rejected without looking at the rest of the file.
constexpr size_t kMaxPayloadBytes = 1 << 24;

std::string SegmentName(uint64_t first_seq, bool sealed) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.%s",
                static_cast<unsigned long long>(first_seq),
                sealed ? "log" : "open");
  return buf;
}

/// Parses the first-seq component out of a segment file name; 0 = not a
/// segment file.
uint64_t SegmentFirstSeq(const std::string& name) {
  if (name.rfind("wal-", 0) != 0) return 0;
  const bool log = name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0;
  const bool open =
      name.size() > 5 && name.compare(name.size() - 5, 5, ".open") == 0;
  if (!log && !open) return 0;
  const size_t begin = 4;
  const size_t end = name.size() - (log ? 4 : 5);
  uint64_t seq = 0;
  for (size_t i = begin; i < end; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

void EncodeSchema(std::string* out, const Schema& schema) {
  serde::PutU32(out, static_cast<uint32_t>(schema.fields().size()));
  for (const Field& f : schema.fields()) {
    serde::PutString(out, f.name);
    serde::PutU8(out, static_cast<uint8_t>(f.type));
  }
}

bool DecodeSchema(serde::Reader* r, Schema* out) {
  uint32_t n;
  if (!r->GetU32(&n)) return false;
  if (n > r->remaining()) return false;  // >= 2 bytes per field.
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field f;
    uint8_t type;
    if (!r->GetString(&f.name) || !r->GetU8(&type)) return false;
    if (type > static_cast<uint8_t>(ValueType::kString)) return false;
    f.type = static_cast<ValueType>(type);
    fields.push_back(std::move(f));
  }
  *out = Schema(std::move(fields));
  return true;
}

}  // namespace

void AppendFrame(std::string* out, const std::string& payload) {
  serde::PutU32(out, static_cast<uint32_t>(payload.size()));
  serde::PutU32(out, MaskCrc32c(Crc32c(payload.data(), payload.size())));
  out->append(payload);
}

bool FrameCursor::Next(std::string* payload) {
  clean_end_ = false;
  if (p_ == end_) {
    clean_end_ = true;
    return false;
  }
  if (static_cast<size_t>(end_ - p_) < kFrameHeaderBytes) return false;
  serde::Reader header(p_, kFrameHeaderBytes);
  uint32_t len = 0;
  uint32_t stored_crc = 0;
  header.GetU32(&len);
  header.GetU32(&stored_crc);
  if (len > kMaxPayloadBytes) return false;
  if (static_cast<size_t>(end_ - p_) < kFrameHeaderBytes + len) return false;
  const char* body = p_ + kFrameHeaderBytes;
  if (MaskCrc32c(Crc32c(body, len)) != stored_crc) return false;
  payload->assign(body, len);
  p_ = body + len;
  return true;
}

std::string EncodeRecord(const WalRecord& rec) {
  std::string out;
  serde::PutU64(&out, rec.seq);
  serde::PutU8(&out, static_cast<uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kIngest:
      serde::PutU32(&out, static_cast<uint32_t>(rec.stream));
      serde::PutTuple(&out, rec.tuple);
      break;
    case WalRecordType::kAdvance:
      serde::PutI64(&out, rec.advance_to);
      break;
    case WalRecordType::kDeclareSource:
      serde::PutString(&out, rec.source_name);
      serde::PutU32(&out, static_cast<uint32_t>(rec.source.stream_id));
      serde::PutU8(&out, static_cast<uint8_t>(rec.source.kind));
      EncodeSchema(&out, rec.source.schema);
      break;
    case WalRecordType::kRegisterQuery:
      serde::PutString(&out, rec.query_name);
      serde::PutString(&out, rec.sql);
      serde::PutU32(&out, static_cast<uint32_t>(rec.shards));
      serde::PutU8(&out, rec.mode);
      break;
    case WalRecordType::kUnregisterQuery:
      serde::PutString(&out, rec.query_name);
      break;
  }
  return out;
}

bool DecodeRecord(const std::string& payload, WalRecord* out) {
  serde::Reader r(payload);
  uint8_t type;
  if (!r.GetU64(&out->seq) || !r.GetU8(&type)) return false;
  if (out->seq == 0) return false;
  if (type > static_cast<uint8_t>(WalRecordType::kUnregisterQuery)) {
    return false;
  }
  out->type = static_cast<WalRecordType>(type);
  switch (out->type) {
    case WalRecordType::kIngest: {
      uint32_t stream;
      if (!r.GetU32(&stream) || !r.GetTuple(&out->tuple)) return false;
      out->stream = static_cast<int>(stream);
      break;
    }
    case WalRecordType::kAdvance:
      if (!r.GetI64(&out->advance_to)) return false;
      break;
    case WalRecordType::kDeclareSource: {
      uint32_t id;
      uint8_t kind;
      if (!r.GetString(&out->source_name) || !r.GetU32(&id) ||
          !r.GetU8(&kind) || !DecodeSchema(&r, &out->source.schema)) {
        return false;
      }
      if (kind > static_cast<uint8_t>(SourceKind::kRelation)) return false;
      out->source.stream_id = static_cast<int>(id);
      out->source.kind = static_cast<SourceKind>(kind);
      break;
    }
    case WalRecordType::kRegisterQuery: {
      uint32_t shards;
      if (!r.GetString(&out->query_name) || !r.GetString(&out->sql) ||
          !r.GetU32(&shards) || !r.GetU8(&out->mode)) {
        return false;
      }
      out->shards = static_cast<int>(shards);
      break;
    }
    case WalRecordType::kUnregisterQuery:
      if (!r.GetString(&out->query_name)) return false;
      break;
  }
  return r.AtEnd();
}

WalWriter::WalWriter(std::string dir, WalWriterOptions options,
                     FaultInjector* faults)
    : wal_dir_((fs::path(dir) / "wal").string()),
      options_(options),
      faults_(faults) {}

WalWriter::~WalWriter() { Close(); }

bool WalWriter::Start(uint64_t next_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return !failed_;
  started_ = true;
  std::error_code ec;
  fs::create_directories(wal_dir_, ec);
  if (ec) {
    failed_ = true;
    return false;
  }
  last_seq_ = next_seq == 0 ? 0 : next_seq - 1;
  if (!OpenSegmentLocked(last_seq_ + 1)) {
    FailLocked();
    return false;
  }
  return true;
}

bool WalWriter::OpenSegmentLocked(uint64_t first_seq) {
  open_path_ = (fs::path(wal_dir_) / SegmentName(first_seq, false)).string();
  fd_ = ::open(open_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return false;
  if (::write(fd_, kSegmentMagic, sizeof(kSegmentMagic)) !=
      static_cast<ssize_t>(sizeof(kSegmentMagic))) {
    return false;
  }
  open_first_seq_ = first_seq;
  open_bytes_ = sizeof(kSegmentMagic);
  bytes_ += sizeof(kSegmentMagic);
  ++segments_;
  return true;
}

void WalWriter::SealLocked() {
  if (fd_ < 0) return;
  if (options_.fsync) ::fsync(fd_);
  ::close(fd_);
  fd_ = -1;
  const std::string sealed =
      (fs::path(wal_dir_) / SegmentName(open_first_seq_, true)).string();
  std::error_code ec;
  fs::rename(open_path_, sealed, ec);  // Atomic within the directory.
  if (options_.fsync && !ec) {
    const int dirfd = ::open(wal_dir_.c_str(), O_RDONLY);
    if (dirfd >= 0) {
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
}

void WalWriter::FailLocked() {
  failed_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t WalWriter::Append(WalRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || failed_ || fd_ < 0) return 0;
  rec.seq = last_seq_ + 1;
  std::string frame;
  AppendFrame(&frame, EncodeRecord(rec));
  size_t keep = frame.size();
  if (faults_ != nullptr && faults_->TearWalWrite(frame.size(), &keep)) {
    // Simulated crash mid-write: persist only a prefix of the frame and
    // enter the terminal failed state -- from here on the process "has
    // crashed" as far as the log is concerned, so nothing later may be
    // appended behind the tear (it would be unreachable garbage anyway:
    // scans stop at the first invalid frame of a segment).
    ++torn_writes_;
    if (keep > 0) {
      (void)!::write(fd_, frame.data(), keep);
    }
    FailLocked();
    return 0;
  }
  // One write() per frame: after the syscall returns, the bytes survive
  // any process death (the OS owns them), which is the durability class
  // the recovery tests simulate.
  const ssize_t n = ::write(fd_, frame.data(), frame.size());
  if (n != static_cast<ssize_t>(frame.size())) {
    FailLocked();
    return 0;
  }
  last_seq_ = rec.seq;
  ++records_;
  bytes_ += frame.size();
  open_bytes_ += frame.size();
  if (open_bytes_ >= options_.segment_bytes) {
    SealLocked();
    if (!OpenSegmentLocked(last_seq_ + 1)) FailLocked();
  }
  return rec.seq;
}

void WalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  SealLocked();
}

void WalWriter::Abandon() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WalWriter::RemoveObsoleteSegments(uint64_t min_needed_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, fs::path>> sealed;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(wal_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const uint64_t first = SegmentFirstSeq(name);
    if (first == 0) continue;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0) {
      sealed.emplace_back(first, entry.path());
    }
  }
  std::sort(sealed.begin(), sealed.end());
  for (size_t i = 0; i < sealed.size(); ++i) {
    // A segment is obsolete when replay from min_needed_seq + 1 starts at
    // or after the *next* segment; the active segment bounds the last
    // sealed one.
    const uint64_t next_first =
        i + 1 < sealed.size() ? sealed[i + 1].first : open_first_seq_;
    if (next_first != 0 && next_first <= min_needed_seq + 1) {
      fs::remove(sealed[i].second, ec);
    }
  }
}

uint64_t WalWriter::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}
uint64_t WalWriter::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}
uint64_t WalWriter::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}
uint64_t WalWriter::segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_;
}
uint64_t WalWriter::torn_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_writes_;
}
bool WalWriter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

WalScanResult ScanWal(const std::string& dir) {
  WalScanResult result;
  const fs::path wal_dir = fs::path(dir) / "wal";
  std::vector<std::pair<uint64_t, fs::path>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(wal_dir, ec)) {
    const uint64_t first = SegmentFirstSeq(entry.path().filename().string());
    if (first > 0) segments.emplace_back(first, entry.path());
  }
  std::sort(segments.begin(), segments.end());
  for (const auto& [first_seq, path] : segments) {
    ++result.segments;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    result.bytes += data.size();
    if (!in || data.size() < sizeof(kSegmentMagic) ||
        std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
      ++result.corrupt_segments;
      continue;
    }
    FrameCursor cursor(data.data() + sizeof(kSegmentMagic),
                       data.size() - sizeof(kSegmentMagic));
    std::string payload;
    bool decode_failed = false;
    while (cursor.Next(&payload)) {
      WalRecord rec;
      if (!DecodeRecord(payload, &rec)) {
        // A frame whose checksum validated but whose body does not decode
        // is corruption the CRC missed (or a foreign format); stop this
        // segment like any other invalid frame.
        decode_failed = true;
        break;
      }
      result.max_seq = std::max(result.max_seq, rec.seq);
      result.records.emplace(rec.seq, std::move(rec));
    }
    if (decode_failed || !cursor.clean_end()) ++result.corrupt_frames;
  }
  return result;
}

}  // namespace durability
}  // namespace upa
