#ifndef UPA_ENGINE_METRICS_H_
#define UPA_ENGINE_METRICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "exec/pipeline.h"

namespace upa {

/// Point-in-time counters of one shard of one registered query. Counters
/// are published by the shard worker after every batch, so a snapshot is
/// cheap (no barrier) but may trail the live state by one batch.
struct ShardMetrics {
  int shard = 0;
  uint64_t processed = 0;     ///< Tuples pulled off the queue and executed.
  uint64_t dropped = 0;       ///< Tuples shed under kDropNewest.
  size_t queue_depth = 0;     ///< Tuples currently waiting.
  size_t state_bytes = 0;     ///< Operator + view state of the replica.
  size_t view_size = 0;       ///< Live result tuples of the shard view.
  uint64_t restarts = 0;      ///< Crash recoveries (replica rebuilds).
  bool crashed = false;       ///< Worker dead, restart pending.
  bool degraded = false;      ///< Replica in lazy-degraded overload mode.
  PipelineStats stats;        ///< The replica's execution counters. After a
                              ///< restart these cover the current replica
                              ///< only (replay re-counts retained tuples).
  HeavyLightStats heavy;      ///< Heavy-light state counters (DESIGN.md
                              ///< §16); all-zero when the skew knob is off.
  bool profiled = false;      ///< Replica runs with a profiler attached.
  obs::PhaseBreakdown phases; ///< Section 6.1 split (when profiled).
};

/// Rolled-up counters of one registered query.
struct QueryMetrics {
  std::string name;
  int shards = 1;
  bool partitioned = false;   ///< False => single-shard fallback.
  std::string partition_note; ///< Key summary or fallback reason.

  uint64_t enqueued = 0;      ///< Tuples the engine routed to this query.
  uint64_t processed = 0;     ///< Sum of shard `processed`.
  uint64_t dropped = 0;       ///< Sum of shard `dropped`.
  size_t queue_depth = 0;     ///< Sum of shard queue depths.
  size_t state_bytes = 0;     ///< Sum of shard state.
  size_t view_size = 0;       ///< Live results across shard views.
  uint64_t restarts = 0;      ///< Sum of shard crash recoveries.
  bool degraded = false;      ///< Query currently in degraded mode.
  uint64_t degrade_events = 0;  ///< Times the overload watermark tripped.
  uint64_t stall_events = 0;    ///< Times the watchdog flagged a stalled
                                ///< shard (queue backed up, no progress).
  PipelineStats stats;        ///< Merged shard PipelineStats.
  HeavyLightStats heavy;      ///< Summed shard heavy-light counters.
  bool profiled = false;      ///< Any shard published a phase breakdown.
  obs::PhaseBreakdown phases; ///< Merged shard phase breakdowns.

  // Result subscriptions (Engine::Subscribe / the network layer).
  uint64_t subscribers = 0;     ///< Currently attached subscriptions.
  uint64_t sub_deltas = 0;      ///< Delta events fanned out (lifetime).
  uint64_t sub_watermarks = 0;  ///< Watermark events fanned out.
  uint64_t sub_resets = 0;      ///< Post-recovery snapshot resets.

  double wall_seconds = 0.0;  ///< Since the query was registered.
  /// Processed tuples per wall second since registration.
  double tuples_per_second = 0.0;

  std::vector<ShardMetrics> per_shard;
};

/// Durability-layer counters (WAL, checkpoints, last recovery). All zero
/// / disabled when the engine runs without a durability directory.
struct DurabilityMetrics {
  bool enabled = false;

  // WAL append side.
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_segments = 0;
  uint64_t wal_torn_writes = 0;  ///< Injected kTornWalWrite faults fired.
  bool wal_failed = false;       ///< Writer in its terminal failed state.

  // Checkpoints written by this engine.
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t last_checkpoint_id = 0;
  size_t last_checkpoint_bytes = 0;
  double last_checkpoint_seconds = 0.0;
  uint64_t last_retained_tuples = 0;   ///< Persisted by the last checkpoint.
  uint64_t last_truncated_tuples = 0;  ///< Dropped by horizon truncation.
  uint64_t non_durable_queries = 0;    ///< RegisterPlan queries (no SQL).

  // Last recovery (StartFromCheckpoint), when this engine was recovered.
  bool recovered = false;
  uint64_t recovery_checkpoint_id = 0;
  uint64_t recovery_wal_records_replayed = 0;
  uint64_t recovery_retained_replayed = 0;
  uint64_t recovery_corrupt_checkpoints_skipped = 0;
  uint64_t recovery_digest_mismatches = 0;
  uint64_t recovery_wal_corrupt_frames = 0;
  bool recovery_wal_gap = false;
  bool recovery_data_loss = false;
  double recovery_seconds = 0.0;
};

/// Snapshot of the whole engine (Engine::Metrics()).
struct EngineMetrics {
  Time clock = 0;  ///< Highest timestamp ingested so far.
  DurabilityMetrics durability;
  std::vector<QueryMetrics> queries;

  /// Human-readable multi-line rendering (one line per query).
  std::string ToString() const;

  /// Prometheus text exposition (format 0.0.4) of every counter and
  /// gauge, one series per query labeled {query="name"}; profiled
  /// queries additionally expose the Section 6.1 phase split as
  /// upa_query_phase_seconds{query=...,phase=...}. Served by
  /// examples/engine_server.cpp's /metrics endpoint.
  std::string ToPrometheus() const;
};

/// Builds the full HTTP/1.x response for one request to the metrics
/// endpoint. `request` is the raw request text (at least the request
/// line); `render` produces the exposition body and is only invoked for
/// well-formed GET/HEAD requests of /metrics (or /). Malformed request
/// lines get 400, unsupported methods 405, other paths 404 — the server
/// must answer garbage with an error response, never crash or hang.
std::string HandleMetricsRequest(const std::string& request,
                                 const std::function<std::string()>& render);

}  // namespace upa

#endif  // UPA_ENGINE_METRICS_H_
