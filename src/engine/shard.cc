#include "engine/shard.h"

#include <chrono>
#include <utility>

#include "common/macros.h"

namespace upa {

ShardExecutor::ShardExecutor(int index, std::unique_ptr<Pipeline> pipeline,
                             size_t queue_capacity, size_t max_batch,
                             BackpressurePolicy policy)
    : index_(index),
      max_batch_(max_batch == 0 ? 1 : max_batch),
      pipeline_(std::move(pipeline)),
      queue_(queue_capacity, policy) {
  UPA_CHECK(pipeline_ != nullptr);
}

ShardExecutor::~ShardExecutor() { Stop(); }

void ShardExecutor::EnableRecovery(
    std::function<std::unique_ptr<Pipeline>()> rebuild, Time horizon) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  UPA_CHECK(!started_);
  UPA_CHECK(rebuild != nullptr);
  rebuild_ = std::move(rebuild);
  horizon_ = horizon > 0 ? horizon : 1;
}

void ShardExecutor::SetFaultContext(FaultInjector* faults, std::string query) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  UPA_CHECK(!started_);
  faults_ = faults;
  query_name_ = std::move(query);
}

void ShardExecutor::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || stopped_) return;
  started_ = true;
  worker_ = std::thread([this] { Run(); });
}

void ShardExecutor::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  if (worker_.joinable()) worker_.join();
  // If the worker crashed (and no watchdog restarted it) there may still
  // be callers parked on control futures, both in the queue and in the
  // unprocessed tail of the log. Unblock them; their actions do not run.
  ReleasePendingControls();
  PublishCounters();  // Final state, now that the worker is quiescent.
}

bool ShardExecutor::Restart() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || stopped_) return false;
  if (!crashed_.load(std::memory_order_acquire)) return false;
  if (!rebuild_) return false;
  if (worker_.joinable()) worker_.join();

  std::unique_ptr<Pipeline> fresh = rebuild_();
  UPA_CHECK(fresh != nullptr);
  pipeline_ = std::move(fresh);
  const bool degrade = degrade_request_.load(std::memory_order_relaxed);
  if (degrade) pipeline_->SetDegraded(true);
  degraded_.store(degrade, std::memory_order_relaxed);
  // Count the restart before replay: replaying the log acks any control
  // that was parked at the crash, and the caller it unblocks may read
  // metrics immediately — it must see this recovery. (The promise's
  // set_value orders the store for that reader.)
  restarts_.fetch_add(1, std::memory_order_relaxed);
  clock_ = -1;
  {
    std::lock_guard<std::mutex> log_lock(log_mu_);
    for (LogEntry& e : log_) {
      const ShardItem& item = e.item;
      if (item.stream >= 0) {
        if (item.tuple.ts > clock_) {
          clock_ = item.tuple.ts;
          pipeline_->Tick(clock_);
        }
        // processed_ was counted when the entry was logged; replay
        // rebuilds state without touching the ledger.
        pipeline_->Ingest(item.stream, item.tuple);
      } else {
        if (item.control_ts > clock_) {
          clock_ = item.control_ts;
          pipeline_->Tick(clock_);
        }
        if (e.acked) continue;  // Caller already unblocked; its action may
                                // reference a stack frame that no longer
                                // exists. The tick above is all it still
                                // owes the replica.
        if (item.action) item.action(*pipeline_);
        PublishCounters();
        e.acked = true;
        item.done->set_value();
      }
    }
    PruneLogLocked();
  }
  crashed_.store(false, std::memory_order_release);
  PublishCounters();
  worker_ = std::thread([this] { Run(); });
  return true;
}

bool ShardExecutor::Enqueue(int stream, const Tuple& t, uint64_t wal_seq) {
  ShardItem item;
  item.stream = stream;
  item.tuple = t;
  item.wal_seq = wal_seq;
  return queue_.Push(std::move(item));
}

bool ShardExecutor::EnqueueRows(std::vector<ShardRow> rows) {
  if (rows.empty()) return true;
  ShardItem item;
  item.rows = std::move(rows);
  return queue_.Push(std::move(item));
}

std::vector<ShardExecutor::RetainedEntry> ShardExecutor::RetainedData(
    uint64_t max_seq) const {
  std::vector<RetainedEntry> out;
  std::lock_guard<std::mutex> lock(log_mu_);
  for (const LogEntry& e : log_) {
    if (e.item.stream < 0) continue;  // Controls are barrier-local.
    if (e.item.wal_seq > max_seq) continue;
    out.push_back({e.item.stream, e.item.wal_seq, e.item.tuple});
  }
  return out;
}

std::future<void> ShardExecutor::EnqueueControl(
    Time ts, std::function<void(Pipeline&)> action) {
  ShardItem item;
  item.control_ts = ts;
  item.action = std::move(action);
  item.done = std::make_shared<std::promise<void>>();
  std::future<void> fut = item.done->get_future();
  if (!queue_.PushUnbounded(std::move(item))) {
    // Stopped: the worker will never see it; complete here. The action is
    // intentionally not run — the caller observes a ready future and can
    // query final state through Metrics().
    std::promise<void> done;
    done.set_value();
    return done.get_future();
  }
  return fut;
}

void ShardExecutor::Run() {
  const bool recovery = rebuild_ != nullptr;
  std::vector<ShardItem> batch;
  std::vector<uint64_t> item_seqs;
  batch.reserve(max_batch_);
  for (;;) {
    if (faults_ != nullptr) {
      const int delay_ms = faults_->NextBatchDelayMs(query_name_, index_);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
    if (queue_.PopBatch(&batch, max_batch_) == 0) break;
    // Batch boundaries are the only place degradation flips, so the
    // request never contends with a replica that is mid-tuple.
    ApplyDegradeRequest();
    // Log the whole batch before touching any of it: a crash between two
    // items of a batch then loses nothing — the tail is replayed.
    if (recovery) AppendBatchToLog(batch, &item_seqs);
    // Open a batched-execution bracket (a no-op unless the replica was
    // built with batching enabled): silent expiration sweeps are deferred
    // until the matching EndBatch below or the next control barrier.
    pipeline_->BeginBatch();
    for (size_t i = 0; i < batch.size(); ++i) {
      ShardItem& item = batch[i];
      if (item.stream >= 0) {
        if (faults_ != nullptr && faults_->ShouldCrash(query_name_, index_)) {
          // Injected death: abandon the batch and exit the thread, leaving
          // the queue open. The watchdog observes crashed() and restarts.
          crashed_.store(true, std::memory_order_release);
          return;
        }
        if (item.tuple.ts > clock_) {
          clock_ = item.tuple.ts;
          pipeline_->Tick(clock_);
        }
        pipeline_->Ingest(item.stream, item.tuple);
        // With recovery on, the ledger counts at log-append time (the
        // entry survives a crash); without a log, count per item here.
        if (!recovery) processed_.fetch_add(1, std::memory_order_relaxed);
      } else if (!item.rows.empty()) {
        if (RunRows(item)) return;  // Injected crash mid-item.
        if (!recovery) {
          processed_.fetch_add(item.rows.size(), std::memory_order_relaxed);
        }
      } else {
        // A control is a barrier: flush deferred expirations first so the
        // action observes state byte-identical to per-tuple execution.
        pipeline_->EndBatch();
        if (item.control_ts > clock_) {
          clock_ = item.control_ts;
          pipeline_->Tick(clock_);
        }
        if (item.action) item.action(*pipeline_);
        // Publish before acking so a caller that sequenced a barrier sees
        // counters covering everything up to it (Flush => exact stats).
        PublishCounters();
        item.done->set_value();
        if (recovery) AckLogged(item_seqs[i]);
        pipeline_->BeginBatch();
      }
    }
    pipeline_->EndBatch();
    PublishCounters();
  }
}

bool ShardExecutor::RunRows(const ShardItem& item) {
  const std::vector<ShardRow>& rows = item.rows;
  if (faults_ != nullptr) {
    // Per-tuple fallback: the fault schedule counts individual tuples,
    // and an injected crash must land between two rows exactly where it
    // would land between two single-tuple items.
    for (const ShardRow& r : rows) {
      if (faults_->ShouldCrash(query_name_, index_)) {
        crashed_.store(true, std::memory_order_release);
        return true;
      }
      if (r.tuple.ts > clock_) {
        clock_ = r.tuple.ts;
        pipeline_->Tick(clock_);
      }
      pipeline_->Ingest(r.stream, r.tuple);
    }
    return false;
  }
  size_t i = 0;
  std::vector<const Tuple*> run;
  while (i < rows.size()) {
    size_t j = i + 1;
    while (j < rows.size() && rows[j].stream == rows[i].stream &&
           rows[j].tuple.ts == rows[i].tuple.ts) {
      ++j;
    }
    if (rows[i].tuple.ts > clock_) {
      clock_ = rows[i].tuple.ts;
      pipeline_->Tick(clock_);
    }
    run.clear();
    run.reserve(j - i);
    for (size_t k = i; k < j; ++k) run.push_back(&rows[k].tuple);
    pipeline_->IngestRun(rows[i].stream, run.data(), j - i);
    i = j;
  }
  return false;
}

void ShardExecutor::ApplyDegradeRequest() {
  const bool want = degrade_request_.load(std::memory_order_relaxed);
  if (want == degraded_.load(std::memory_order_relaxed)) return;
  pipeline_->SetDegraded(want);
  degraded_.store(want, std::memory_order_relaxed);
}

void ShardExecutor::AppendBatchToLog(const std::vector<ShardItem>& batch,
                                     std::vector<uint64_t>* item_seqs) {
  uint64_t data_items = 0;
  std::lock_guard<std::mutex> lock(log_mu_);
  item_seqs->clear();
  item_seqs->reserve(batch.size());
  for (const ShardItem& item : batch) {
    item_seqs->push_back(log_end_seq_);
    if (!item.rows.empty()) {
      // Expand multi-row items into per-row data entries: replay,
      // pruning, and checkpoint capture then never see a batch boundary.
      for (const ShardRow& r : item.rows) {
        ShardItem row_item;
        row_item.stream = r.stream;
        row_item.tuple = r.tuple;
        row_item.wal_seq = r.wal_seq;
        if (r.tuple.ts > log_newest_) log_newest_ = r.tuple.ts;
        log_.push_back({std::move(row_item), false});
        ++log_end_seq_;
        ++data_items;
      }
      continue;
    }
    log_.push_back({item, false});
    ++log_end_seq_;
    if (item.stream >= 0) {
      ++data_items;
      if (item.tuple.ts > log_newest_) log_newest_ = item.tuple.ts;
    }
  }
  if (data_items > 0) {
    processed_.fetch_add(data_items, std::memory_order_relaxed);
  }
  PruneLogLocked();
}

void ShardExecutor::AckLogged(uint64_t seq) {
  std::lock_guard<std::mutex> lock(log_mu_);
  if (seq < log_begin_seq_) return;  // Pruned already — cannot happen for
                                     // controls, but stay defensive.
  const uint64_t idx = seq - log_begin_seq_;
  if (idx < log_.size()) log_[idx].acked = true;
}

void ShardExecutor::PruneLogLocked() {
  while (!log_.empty()) {
    const LogEntry& e = log_.front();
    bool prunable;
    if (e.item.stream >= 0) {
      // A data tuple leaves the log once it falls outside the largest
      // registered window: by the paper's expiration semantics it can no
      // longer contribute to any operator state, so replay never needs
      // it. A kNeverExpires horizon (relations, count windows, unwindowed
      // streams) retains everything.
      prunable = horizon_ != kNeverExpires &&
                 log_newest_ - e.item.tuple.ts >= horizon_;
    } else {
      prunable = e.acked;
    }
    if (!prunable) break;
    log_.pop_front();
    ++log_begin_seq_;
  }
}

void ShardExecutor::ReleasePendingControls() {
  std::vector<ShardItem> batch;
  while (queue_.PopBatch(&batch, max_batch_) > 0) {
    for (ShardItem& item : batch) {
      if (item.stream < 0 && item.done) item.done->set_value();
    }
  }
  std::lock_guard<std::mutex> lock(log_mu_);
  for (LogEntry& e : log_) {
    if (e.item.stream < 0 && !e.acked && e.item.done) {
      e.acked = true;
      e.item.done->set_value();
    }
  }
}

void ShardExecutor::PublishCounters() {
  state_bytes_.store(pipeline_->StateBytes(), std::memory_order_relaxed);
  view_size_.store(pipeline_->view().Size(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  published_stats_ = pipeline_->stats();
  published_heavy_ = pipeline_->CollectHeavyLight();
  if (pipeline_->profiling()) {
    published_phases_ = pipeline_->profiler()->Snapshot().phases;
  }
}

ShardMetrics ShardExecutor::Metrics(int shard_index) const {
  ShardMetrics m;
  m.shard = shard_index;
  m.processed = processed_.load(std::memory_order_relaxed);
  m.dropped = queue_.dropped();
  m.queue_depth = queue_.size();
  m.state_bytes = state_bytes_.load(std::memory_order_relaxed);
  m.view_size = view_size_.load(std::memory_order_relaxed);
  m.restarts = restarts_.load(std::memory_order_relaxed);
  m.crashed = crashed_.load(std::memory_order_acquire);
  m.degraded = degraded_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    m.stats = published_stats_;
    m.heavy = published_heavy_;
    m.phases = published_phases_;
  }
  m.profiled = m.phases.sampled_ingests > 0 || m.phases.sampled_ticks > 0;
  return m;
}

}  // namespace upa
