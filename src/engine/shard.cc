#include "engine/shard.h"

#include <utility>

#include "common/macros.h"

namespace upa {

ShardExecutor::ShardExecutor(int index, std::unique_ptr<Pipeline> pipeline,
                             size_t queue_capacity, size_t max_batch,
                             BackpressurePolicy policy)
    : index_(index),
      max_batch_(max_batch == 0 ? 1 : max_batch),
      pipeline_(std::move(pipeline)),
      queue_(queue_capacity, policy) {
  UPA_CHECK(pipeline_ != nullptr);
}

ShardExecutor::~ShardExecutor() { Stop(); }

void ShardExecutor::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || stopped_) return;
  started_ = true;
  worker_ = std::thread([this] { Run(); });
}

void ShardExecutor::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  if (worker_.joinable()) worker_.join();
  PublishCounters();  // Final state, now that the worker is quiescent.
}

bool ShardExecutor::Enqueue(int stream, const Tuple& t) {
  ShardItem item;
  item.stream = stream;
  item.tuple = t;
  return queue_.Push(std::move(item));
}

std::future<void> ShardExecutor::EnqueueControl(
    Time ts, std::function<void(Pipeline&)> action) {
  ShardItem item;
  item.control_ts = ts;
  item.action = std::move(action);
  item.done = std::make_shared<std::promise<void>>();
  std::future<void> fut = item.done->get_future();
  if (!queue_.PushUnbounded(std::move(item))) {
    // Stopped: the worker will never see it; complete here. The action is
    // intentionally not run — the caller observes a ready future and can
    // query final state through Metrics().
    std::promise<void> done;
    done.set_value();
    return done.get_future();
  }
  return fut;
}

void ShardExecutor::Run() {
  std::vector<ShardItem> batch;
  batch.reserve(max_batch_);
  while (queue_.PopBatch(&batch, max_batch_) > 0) {
    for (ShardItem& item : batch) {
      if (item.stream >= 0) {
        if (item.tuple.ts > clock_) {
          clock_ = item.tuple.ts;
          pipeline_->Tick(clock_);
        }
        pipeline_->Ingest(item.stream, item.tuple);
        processed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (item.control_ts > clock_) {
          clock_ = item.control_ts;
          pipeline_->Tick(clock_);
        }
        if (item.action) item.action(*pipeline_);
        // Publish before acking so a caller that sequenced a barrier sees
        // counters covering everything up to it (Flush => exact stats).
        PublishCounters();
        item.done->set_value();
      }
    }
    PublishCounters();
  }
}

void ShardExecutor::PublishCounters() {
  state_bytes_.store(pipeline_->StateBytes(), std::memory_order_relaxed);
  view_size_.store(pipeline_->view().Size(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  published_stats_ = pipeline_->stats();
  if (pipeline_->profiling()) {
    published_phases_ = pipeline_->profiler()->Snapshot().phases;
  }
}

ShardMetrics ShardExecutor::Metrics(int shard_index) const {
  ShardMetrics m;
  m.shard = shard_index;
  m.processed = processed_.load(std::memory_order_relaxed);
  m.dropped = queue_.dropped();
  m.queue_depth = queue_.size();
  m.state_bytes = state_bytes_.load(std::memory_order_relaxed);
  m.view_size = view_size_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    m.stats = published_stats_;
    m.phases = published_phases_;
  }
  m.profiled = m.phases.sampled_ingests > 0 || m.phases.sampled_ticks > 0;
  return m;
}

}  // namespace upa
