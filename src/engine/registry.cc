#include "engine/registry.h"

#include <cstddef>
#include <utility>

#include "common/macros.h"
#include "common/value.h"

namespace upa {
namespace {

void CollectStreamIds(const PlanNode& n, std::set<int>* out) {
  if (n.kind == PlanOpKind::kStream || n.kind == PlanOpKind::kRelation) {
    out->insert(n.stream_id);
  }
  for (const auto& c : n.children) CollectStreamIds(*c, out);
}

bool ContainsKind(const PlanNode& n, PlanOpKind kind) {
  if (n.kind == kind) return true;
  for (const auto& c : n.children) {
    if (ContainsKind(*c, kind)) return true;
  }
  return false;
}

/// Maps a plan's Section 5.2 update pattern onto the check the result
/// view can enforce. Group-by is excluded from the expiration checks
/// (its outputs replace each other: a deletion is an update, not an
/// expiration), as are count windows (eviction is count-driven, not
/// clock-driven) and relations (updates delete tuples that never expire).
PatternInvariant InvariantFor(const PlanNode& plan) {
  if (ContainsKind(plan, PlanOpKind::kGroupBy) ||
      ContainsKind(plan, PlanOpKind::kCountWindow) ||
      ContainsKind(plan, PlanOpKind::kRelation)) {
    return PatternInvariant::kLiveOnly;
  }
  switch (plan.pattern) {
    case UpdatePattern::kWeakest:
      return PatternInvariant::kFifo;
    case UpdatePattern::kWeak:
      return PatternInvariant::kPredictable;
    case UpdatePattern::kMonotonic:
    case UpdatePattern::kStrict:
      return PatternInvariant::kLiveOnly;
  }
  return PatternInvariant::kLiveOnly;
}

}  // namespace

RegisteredQuery::RegisteredQuery(std::string name, PlanPtr plan,
                                 const QueryOptions& options,
                                 int default_shards, size_t queue_capacity,
                                 size_t max_batch, BackpressurePolicy policy,
                                 bool enable_recovery, FaultInjector* faults)
    : name_(std::move(name)),
      plan_(std::move(plan)),
      scheme_(AnalyzePartitionability(*plan_)),
      factory_(plan_.get(), options.mode, options.planner),
      options_(options),
      registered_at_(std::chrono::steady_clock::now()) {
  CollectStreamIds(*plan_, &streams_);
  int shards = options.shards > 0 ? options.shards : default_shards;
  if (shards < 1) shards = 1;
  if (!scheme_.partitionable) shards = 1;  // Documented fallback.
  if (scheme_.partitionable) key_cols_ = scheme_.stream_key_cols;
  const Time horizon = enable_recovery ? RecoveryHorizon(*plan_) : 0;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<ShardExecutor>(
        i, MakeReplica(), queue_capacity, max_batch, policy);
    if (enable_recovery) {
      // The factory outlives the shard (both live in this object), so the
      // rebuild closure can safely capture `this`.
      shard->EnableRecovery([this] { return MakeReplica(); }, horizon);
    }
    if (faults != nullptr) shard->SetFaultContext(faults, name_);
    shards_.push_back(std::move(shard));
  }
}

std::unique_ptr<Pipeline> RegisteredQuery::MakeReplica() const {
  std::unique_ptr<Pipeline> replica = factory_.Replicate();
  if (options_.profile) replica->EnableProfiling(options_.profiler);
  if (options_.check_invariants) {
    replica->EnableInvariantChecks(InvariantFor(*plan_));
  }
  if (options_.batching) replica->EnableBatching();
  return replica;
}

uint64_t RegisteredQuery::TotalRestarts() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->restarts();
  return total;
}

ViewDeltaKind RegisteredQuery::view_delta_kind() const {
  // Mirrors the physical planner's view choice: a group-by root gets a
  // GroupArrayView (replace semantics, Section 5.3.2); everything else
  // materializes a tuple multiset.
  return plan_->kind == PlanOpKind::kGroupBy ? ViewDeltaKind::kGroupReplace
                                             : ViewDeltaKind::kMultiset;
}

int RegisteredQuery::ShardOf(int stream_id, const Tuple& t) const {
  if (shards_.size() == 1) return 0;
  auto it = key_cols_.find(stream_id);
  UPA_DCHECK(it != key_cols_.end());
  const size_t col = static_cast<size_t>(it->second);
  UPA_DCHECK(col < t.fields.size());
  return static_cast<int>(HashValue(t.fields[col]) % shards_.size());
}

RegisteredQuery* QueryRegistry::Add(std::unique_ptr<RegisteredQuery> query) {
  UPA_CHECK(query != nullptr);
  if (by_name_.count(query->name()) > 0) return nullptr;
  by_name_.emplace(query->name(), queries_.size());
  queries_.push_back(std::move(query));
  return queries_.back().get();
}

std::unique_ptr<RegisteredQuery> QueryRegistry::Remove(
    const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  const size_t index = it->second;
  std::unique_ptr<RegisteredQuery> out = std::move(queries_[index]);
  queries_.erase(queries_.begin() + static_cast<ptrdiff_t>(index));
  by_name_.erase(it);
  // Every query after the erased slot shifted down by one.
  for (auto& [unused_name, idx] : by_name_) {
    if (idx > index) --idx;
  }
  return out;
}

RegisteredQuery* QueryRegistry::Find(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : queries_[it->second].get();
}

const RegisteredQuery* QueryRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : queries_[it->second].get();
}

}  // namespace upa
