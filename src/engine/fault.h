#ifndef UPA_ENGINE_FAULT_H_
#define UPA_ENGINE_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace upa {

/// The fault classes the chaos harness can inject. Every fault is
/// deterministic: it fires when a per-(query, shard) event counter
/// reaches the scheduled count, so a (seed, schedule) pair reproduces a
/// run exactly -- the property the differential chaos tests rely on.
enum class FaultKind {
  /// The shard worker thread exits mid-batch, as if the thread died. The
  /// queue stays open; the engine watchdog must restart the shard and
  /// rebuild its replica from the recovery log.
  kKillShard,
  /// An allocation fails at an operator boundary. The replica is treated
  /// as poisoned and the worker takes the crash path -- recovery is the
  /// same replica rebuild as kKillShard, but counted separately.
  kAllocFail,
  /// The worker sleeps before draining its next batch, simulating a slow
  /// shard. Queue depth builds up, which is what drives the overload
  /// watermark and the stall detector.
  kDelayBatch,
  /// The engine drops one ingest event before fan-out (lossy transport).
  kDropIngest,
  /// The engine delivers one ingest event twice (at-least-once
  /// transport).
  kDuplicateIngest,
  /// The engine swaps this ingest event with the next one carrying the
  /// same timestamp (reordered transport). Tuples of equal timestamp are
  /// unordered in the paper's model, so this perturbs execution without
  /// changing the defined result.
  kReorderIngest,
  /// The durability WAL writer persists only a prefix of one record's
  /// frame, as if the process died mid-write, and then stops appending
  /// (the writer enters its terminal failed state). `param` is the number
  /// of frame bytes that reach disk (clamped to the frame size; 0 tears
  /// the whole frame away). Recovery must detect the torn frame and
  /// replay exactly the records before it.
  kTornWalWrite,
  /// The network fault proxy (src/net/fault_socket.h) resets the
  /// connection (TCP RST) once its per-direction forwarded-byte counter
  /// reaches at_count; `shard` is the direction (0 = client->server,
  /// 1 = server->client, -1 = either). Counting bytes, not kernel read
  /// chunks, keeps the trigger deterministic under arbitrary
  /// segmentation.
  kNetRst,
  /// The proxy stalls forwarding for `param` milliseconds at the byte
  /// threshold (same direction encoding), simulating congestion; with
  /// `repeat` the stall re-fires every at_count bytes.
  kNetDelay,
};

std::string FaultKindName(FaultKind kind);

/// One scheduled fault. Worker-side faults (kill/alloc/delay) count data
/// tuples processed by the matching shard; ingest-side faults count
/// Engine::Ingest calls. `query`/`shard` narrow the target; an empty
/// query or shard -1 matches any.
struct FaultEvent {
  FaultKind kind = FaultKind::kKillShard;
  std::string query;      ///< Target query name; empty = any.
  int shard = -1;         ///< Target shard index; -1 = any.
  uint64_t at_count = 0;  ///< Fire when the target's counter reaches this.
  int param = 0;          ///< kDelayBatch: sleep milliseconds.
  bool repeat = false;    ///< Re-fire every `at_count` events (delay only).
};

/// Deterministic fault injector shared by the engine (ingest hooks) and
/// the shard workers (crash/delay hooks). Thread-safe; hooks are cheap
/// enough for test traffic but this is chaos-testing machinery, not a
/// production code path -- engines run without one unless
/// EngineOptions::fault_injector is set.
class FaultInjector {
 public:
  explicit FaultInjector(std::vector<FaultEvent> schedule);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// What Engine::Ingest should do with the current event.
  enum class IngestAction { kDeliver, kDrop, kDuplicate, kReorder };

  /// Worker hook, called once per data tuple before it is processed.
  /// Returns true when a kKillShard/kAllocFail fault fires for
  /// (query, shard); the worker then abandons the batch and exits.
  bool ShouldCrash(const std::string& query, int shard);

  /// Worker hook, called before each PopBatch: milliseconds to stall, or
  /// 0. The sleep happens before the pop so queued items stay visible to
  /// the overload watermark while the shard lags.
  int NextBatchDelayMs(const std::string& query, int shard);

  /// Engine hook, called once per Ingest call (before fan-out).
  IngestAction OnIngest();

  /// WAL hook, called once per record append with the encoded frame size.
  /// Returns true when a kTornWalWrite fault fires; *keep_bytes is then
  /// the number of frame bytes the writer should persist before simulating
  /// the crash (the event's `param`, clamped to [0, frame_bytes)).
  bool TearWalWrite(size_t frame_bytes, size_t* keep_bytes);

  /// What the network fault proxy should do after forwarding `n` more
  /// bytes in direction `dir` (0 = client->server, 1 = server->client).
  /// rst and delay_ms can both be set; the proxy delays, then resets.
  struct NetAction {
    bool rst = false;
    int delay_ms = 0;
  };

  /// Proxy hook, called once per forwarded chunk. Cumulative
  /// per-direction byte counters decide firing, so the schedule is
  /// deterministic in the byte stream regardless of how the kernel
  /// segments it.
  NetAction OnNetBytes(int dir, size_t n);

  /// Faults of `kind` that have fired so far.
  uint64_t fired(FaultKind kind) const;
  uint64_t total_fired() const;

  /// Seeded random schedule over `queries` x `shards`: a few shard kills
  /// and batch delays at random points of a run expected to process about
  /// `expected_events` tuples per shard, plus (optionally) ingest
  /// drop/duplicate/reorder faults. Deterministic in `seed`.
  static std::vector<FaultEvent> RandomSchedule(
      uint64_t seed, const std::vector<std::string>& queries, int shards,
      uint64_t expected_events, bool ingest_faults);

  /// Seeded random network schedule: a few connection resets and stalls
  /// at random byte offsets of a run expected to move about
  /// `expected_bytes_c2s` / `expected_bytes_s2c` bytes per direction.
  /// Deterministic in `seed`; drives FaultProxy via OnNetBytes.
  static std::vector<FaultEvent> RandomNetSchedule(uint64_t seed,
                                                   uint64_t expected_bytes_c2s,
                                                   uint64_t expected_bytes_s2c);

 private:
  struct PendingEvent {
    FaultEvent event;
    bool fired = false;
  };

  mutable std::mutex mu_;
  std::vector<PendingEvent> schedule_;
  std::map<std::pair<std::string, int>, uint64_t> tuple_counts_;
  std::map<std::pair<std::string, int>, uint64_t> batch_counts_;
  uint64_t ingest_count_ = 0;
  uint64_t wal_count_ = 0;
  uint64_t net_bytes_[2] = {0, 0};  ///< Forwarded bytes per direction.
  std::map<FaultKind, uint64_t> fired_;
};

}  // namespace upa

#endif  // UPA_ENGINE_FAULT_H_
