#ifndef UPA_ENGINE_ENGINE_H_
#define UPA_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/durability/recovery.h"
#include "engine/fault.h"
#include "engine/metrics.h"
#include "engine/registry.h"
#include "engine/subscription.h"
#include "sql/catalog.h"
#include "workload/trace.h"

namespace upa {

/// Durability knobs (see src/engine/durability/). With a directory set,
/// the engine write-ahead-logs every state-driving call (source
/// declarations, SQL registrations, ingest, clock advances) before acting
/// on it, and Checkpoint() persists pattern-aware snapshots that bound
/// how much WAL a recovery must replay. Durability implies per-shard
/// ingest logs (the retained-state source for checkpoints), so every
/// shard also becomes watchdog-restartable.
struct DurabilityOptions {
  /// Root directory of the WAL and checkpoints. Empty: durability off.
  /// Use Engine::StartFromCheckpoint to recover from a non-empty one; a
  /// plainly-constructed engine resumes appending without restoring.
  std::string dir;
  /// WAL segment rotation size.
  size_t wal_segment_bytes = 1 << 20;
  /// fsync WAL seals and checkpoint publishes (OS-crash durability; the
  /// default covers process crashes only -- every record is down a
  /// write() before the engine acts on it).
  bool fsync = false;
  /// Checkpoints retained on disk; WAL segments needed by them are kept.
  int keep_checkpoints = 2;
  /// > 0: run a background thread checkpointing at this period.
  int checkpoint_interval_ms = 0;
  /// Seal (rename) the active WAL segment on Stop(). Tests disable this
  /// to leave the exact on-disk state of an abrupt process death.
  bool seal_on_close = true;
};

/// Engine-wide defaults (per-query values override via QueryOptions).
struct EngineOptions {
  /// Shards per partitionable query.
  int default_shards = 1;
  /// Capacity of each shard's ingest queue, in tuples.
  size_t queue_capacity = 4096;
  /// Max tuples a shard worker drains per wakeup.
  size_t max_batch = 128;
  /// Batched ingest (DESIGN.md Section 15): rows are coalesced in the
  /// engine and shipped to the shard queues as multi-row items; shard
  /// workers hand same-stream same-timestamp runs to the operators in
  /// one call, and replicas defer silent expiration sweeps to batch
  /// boundaries. Results, counters, and digests are byte-identical to
  /// per-tuple execution at every barrier. 1 = per-tuple execution (the
  /// differential oracle path); 0 = auto: the UPA_BATCH environment
  /// variable if set (> 1), else 1.
  size_t batch_size = 0;
  /// Heavy-light state partitioning (DESIGN.md Section 16): engine-wide
  /// default for PlannerOptions::heavy_threshold when a query does not
  /// set its own. 0 disables (the differential oracle path, like
  /// batch_size = 1); > 0 is the per-epoch probe count that promotes a
  /// key; -1 = auto: the UPA_HEAVY_THRESHOLD environment variable if set,
  /// else disabled.
  int heavy_threshold = -1;
  /// What producers do when a shard queue is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Profile every registered query (per-query QueryOptions::profile
  /// still wins when set). Phase breakdowns then show up in Metrics()
  /// and the Prometheus exposition.
  bool profile_queries = false;

  // --- Robustness layer (supervision, recovery, overload handling) ---

  /// Run a watchdog thread that restarts crashed shard workers, flags
  /// stalled ones, and drives overload degradation. Off by default: a
  /// plain engine has no background threads beyond its workers.
  bool supervise = false;
  /// Watchdog poll period.
  int watchdog_interval_ms = 20;
  /// When any shard queue of a query fills past this fraction of its
  /// capacity, the watchdog switches the query's replicas to degraded
  /// (wider lazy-expiration intervals: the Section 6.1 trade of memory
  /// for per-tuple CPU, results unchanged)...
  double degrade_high_watermark = 0.75;
  /// ...and back to normal once every queue drains below this fraction.
  double degrade_low_watermark = 0.25;
  /// A shard with a non-empty queue and no progress for this long is
  /// counted as stalled (visible in metrics; restart only fires on
  /// crashes, a slow shard is left alone).
  int stall_timeout_ms = 500;
  /// With supervise: keep per-shard window-bounded ingest logs so a
  /// crashed shard's replica can be rebuilt by replay.
  bool recover = true;
  /// Chaos-test fault injector (borrowed; must outlive the engine). Null
  /// in production.
  FaultInjector* fault_injector = nullptr;
  /// Force QueryOptions::check_invariants for every registered query.
  bool check_invariants = false;

  // --- Durability layer (WAL, checkpoints, crash recovery) ---
  DurabilityOptions durability;
};

/// Outcome of registering a query.
struct RegisterResult {
  bool ok = false;
  std::string error;          ///< Parse/validation failure, duplicate name.
  std::string name;
  int shards = 0;             ///< Shards the query actually runs on.
  bool partitioned = false;   ///< False: single-shard fallback.
  std::string partition_note; ///< Key summary, or the fallback reason.
};

/// The multi-query runtime: owns registered continuous queries, fans
/// shared input streams out to every query that binds them, and executes
/// each query on hash-partitioned shard workers.
///
/// Processing model. The caller ingests one merged, timestamp-ordered
/// event sequence (the Section 2 discipline). For each event the engine
/// routes a copy to every registered query reading that stream; within a
/// query the tuple goes to the shard selected by hashing the plan's
/// partition column (see AnalyzePartitionability), so all tuples that any
/// stateful operator must ever combine meet in the same replica, and each
/// replica observes a timestamp-monotone subsequence of the input. The
/// multiset union of the shard views therefore equals the view of a
/// single-threaded run at every barrier — the determinism property
/// engine_test checks against the reference oracle.
///
/// Thread safety: Ingest may be called from several producer threads, but
/// per-shard timestamp monotonicity is then the callers' contract (e.g.
/// partition the producers by stream). Registration, snapshots, and
/// metrics may be called concurrently with ingest.
class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Recovery entry point: brings up an engine from the durability
  /// directory `dir`. Loads the newest checkpoint that passes checksum
  /// validation, re-registers its queries through the normal
  /// catalog/registry path, re-injects the retained per-shard tuples,
  /// verifies every shard view against the manifest digests, and replays
  /// the WAL suffix. Candidates that fail any check fall back to the next
  /// older checkpoint, and finally to a full WAL replay; corruption never
  /// aborts recovery, it only shortens the recovered prefix (see
  /// durability::RecoveryReport, also available via recovery_report()).
  /// `options.durability.dir` is overwritten with `dir`. Never returns
  /// null.
  static std::unique_ptr<Engine> StartFromCheckpoint(
      const std::string& dir, EngineOptions options = {},
      durability::RecoveryReport* report = nullptr);

  /// Named-source registry backing SQL registration. Declare sources
  /// before registering queries that reference them. Mutating the catalog
  /// directly bypasses the WAL; durable engines should declare through
  /// DeclareStream/DeclareRelation below.
  SourceCatalog* catalog() { return &catalog_; }

  /// WAL-logged source declaration (same semantics as the catalog call of
  /// the same name; returns the stream id or -1). On a non-durable engine
  /// these are plain catalog calls.
  int DeclareStream(const std::string& name, Schema schema);
  int DeclareRelation(const std::string& name, Schema schema,
                      bool retroactive);

  /// Compiles `sql` against the catalog and registers the plan under
  /// `name`. The query starts consuming immediately.
  RegisterResult RegisterSql(const std::string& name, const std::string& sql,
                             const QueryOptions& options = {});

  /// Registers an already-built logical plan (annotated + validated).
  RegisterResult RegisterPlan(const std::string& name, PlanPtr plan,
                              const QueryOptions& options = {});

  /// Removes query `name` while the engine keeps running: the registry
  /// forgets it under the registration lock (no new tuples are routed to
  /// it afterwards), then its shard workers are drained and joined
  /// outside that lock, so ingest into every other query proceeds during
  /// the teardown. Subscriptions to the query cease: on return no
  /// subscription callback is in flight and none will fire again (the
  /// network layer translates this into kSubDropped pushes). On a
  /// durable engine the removal is WAL-logged (and therefore replayed by
  /// recovery) when the query was SQL-registered. Returns false with
  /// `error` when no such query exists or the engine is stopped.
  bool UnregisterQuery(const std::string& name, std::string* error = nullptr);

  /// Routes one event to every query bound to `stream_id`. Timestamps
  /// must be non-decreasing across calls.
  void Ingest(int stream_id, const Tuple& t);

  /// Convenience: Ingest every event of `trace` in order.
  void IngestTrace(const Trace& trace);

  /// Advances the engine clock without an arrival (idle input, paper
  /// Section 2.3.2: operators expire state even without new tuples). The
  /// new time reaches the shard replicas at the next barrier/snapshot.
  void AdvanceTo(Time now);

  /// Barrier: waits until every shard of every query (or of `name` only)
  /// has processed everything enqueued so far and ticked to the engine
  /// clock. Queue depths are zero afterwards (absent concurrent ingest).
  ///
  /// Failure mode (documented contract, pinned by engine_test): when a
  /// shard has crashed, the barrier first tries to restart it inline
  /// (racing the watchdog is safe -- restarts are serialized per shard).
  /// Only a shard that crashed *without* a recovery factory (supervise or
  /// recover off, durability off) can never ack its barrier control; the
  /// call then returns false promptly instead of hanging.
  bool Flush();
  bool FlushQuery(const std::string& name);

  /// Consistent view snapshot of a query at the engine clock (or at
  /// `at`, if later): barriers every shard, ticks replicas to the target
  /// time, and returns the multiset union of the shard views. Returns
  /// false if `name` is unknown or the barrier failed on an
  /// unrecoverable crashed shard (see Flush).
  bool Snapshot(const std::string& name, std::vector<Tuple>* out,
                Time at = -1);

  /// Attaches a result subscription to query `name` (the engine side of
  /// the network layer's pattern-aware subscriptions; see
  /// SubscriptionEvent for the event contract). The attach is atomic
  /// with respect to ingest: registration is locked out, every shard is
  /// barriered at the engine clock, the replica delta sinks are
  /// installed and the view snapshot captured on the shard threads, and
  /// only then is the callback added — so the snapshot in `info` plus
  /// the subsequent delta stream reproduce the view exactly, with no
  /// gap and no duplicate. Returns false for unknown queries or when
  /// the barrier failed on an unrecoverably crashed shard.
  ///
  /// `callback` runs on engine-internal threads and must not call back
  /// into the engine. Watermarks arrive at every successful
  /// Flush/FlushQuery/Snapshot barrier; if a shard was killed and
  /// recovered between barriers, the next barrier delivers a kReset
  /// with a fresh snapshot instead (replay rebuilds replicas without
  /// re-emitting deltas, so a reset is how a recovered shard's
  /// subscribers are re-synchronized rather than corrupted).
  bool Subscribe(const std::string& name, SubscriptionCallback callback,
                 SubscriptionInfo* info);

  /// Re-couples existing subscription `id` on query `name` to a new
  /// callback, capturing a consistent snapshot at the same barrier that
  /// installs the callback (the same no-lost/no-duplicated-delta window
  /// as Subscribe). The id is stable: deltas emitted after the barrier
  /// flow to `callback`; nothing flows to the old one. Backs the
  /// network layer's resume snapshot-fallback (DESIGN.md Section 17).
  /// Returns false if the query or id is unknown.
  bool Resubscribe(const std::string& name, uint64_t id,
                   SubscriptionCallback callback,
                   std::vector<Tuple>* snapshot);

  /// Detaches subscription `id` from query `name`. On return no
  /// callback for it is in flight and none will fire again. Returns
  /// false if the query or id is unknown.
  bool Unsubscribe(const std::string& name, uint64_t id);

  /// Durable, cross-shard-consistent checkpoint (see
  /// durability/checkpoint.h): barriers every durable query at one WAL
  /// cut, persists the horizon-truncated retained tuples and view
  /// digests, then prunes old checkpoints and obsolete WAL segments.
  /// Returns false (with `error`, if given) when durability is off, the
  /// engine is stopped, a shard is crashed and unrecoverable, or the
  /// write fails. Serialized against itself; safe with concurrent ingest.
  bool Checkpoint(std::string* error = nullptr);

  /// Report of the recovery that created this engine (attempted == false
  /// for plainly-constructed engines).
  const durability::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  /// Read-only handle to a registered query, or nullptr if unknown. The
  /// pointer stays valid until UnregisterQuery removes the query (or for
  /// the engine's lifetime if it never is); callers that race unregister
  /// must not cache it across calls. Used by the network layer to report
  /// a query's update pattern and view kind without copying metrics.
  const RegisteredQuery* FindQuery(const std::string& name) const;

  /// Merged PipelineStats of a query's shards (barrier-free, may trail
  /// by one batch; call Flush first for exact totals).
  bool Stats(const std::string& name, PipelineStats* out) const;

  /// Barrier-free metrics snapshot of every query.
  EngineMetrics Metrics() const;

  /// Engine clock: the highest timestamp ingested or advanced to.
  Time clock() const { return clock_.load(std::memory_order_relaxed); }

  /// Stops every shard worker after draining enqueued work. Idempotent;
  /// also run by the destructor. Further Ingest calls are no-ops.
  void Stop();

  /// Runs one supervision pass inline: restarts crashed shards, updates
  /// stall flags, applies the overload watermarks. The watchdog thread
  /// calls this every watchdog_interval_ms; tests may call it directly
  /// for deterministic assertions (works even with supervise off).
  void PollSupervisor();

 private:
  /// Tag for the recovery path: construct without opening the WAL (it is
  /// attached by StartFromCheckpoint once replay is done, so replayed
  /// events are not re-logged).
  struct DeferDurabilityTag {};
  Engine(const EngineOptions& options, DeferDurabilityTag);

  RegisterResult DoRegister(const std::string& name, PlanPtr plan,
                            const QueryOptions& options,
                            const std::string& sql);
  /// Opens the WAL for appending with `next_seq` as the next sequence
  /// number and starts the background checkpointer (if configured).
  void AttachWal(uint64_t next_seq);
  /// Scans an existing durability dir and attaches the WAL after its
  /// highest sequence number (fresh-start path of the public ctor).
  void InitDurability();
  void CheckpointLoop();
  /// Applies one replayed WAL record (recovery only; WAL not attached).
  void ApplyWalRecord(const durability::WalRecord& rec,
                      durability::RecoveryReport* report);
  /// The fan-out path shared by Ingest and the fault hooks: advances the
  /// engine clock and routes the tuple to every bound query.
  void IngestImpl(int stream_id, const Tuple& t);
  /// Delivers `t`, flushing a held (reorder-fault) tuple around it in the
  /// right order: before `t` when strictly older, after when equal-ts
  /// (the swap the fault asks for).
  void DeliverOne(int stream_id, const Tuple& t);
  /// Delivers a held reorder-fault tuple, if any. Called by every
  /// barrier/snapshot entry point so a held tuple is never outstanding
  /// when results are observed.
  void FlushHeld();
  /// Routes the coalesced pending rows to the shard queues (no-op with
  /// batch_size <= 1). Called by every barrier/snapshot entry point so a
  /// pending row is never outstanding when results are observed, and by
  /// Stop/UnregisterQuery so acknowledged ingests are never dropped.
  /// Acquires mu_ shared; use FlushPendingLocked when already holding it.
  void FlushPendingBatch();
  /// As FlushPendingBatch, but mu_ (shared or unique) is already held.
  void FlushPendingLocked();
  /// Groups pending_ by query and shard (preserving ingest order) and
  /// enqueues multi-row items. Caller holds mu_ and batch_mu_.
  void RouteRowsLocked();
  void WatchdogLoop();
  /// Post-barrier subscription publication: emits the watermark to `q`'s
  /// subscribers, or, when a shard restarted since the sinks were
  /// attached (`hub.attached_restarts` trails TotalRestarts), records the
  /// query in `need_reset` for ResetSubscriptions. Call with `mu_` held
  /// (shared) after a successful barrier at `ts`.
  void PublishBarrier(RegisteredQuery* q, Time ts,
                      std::vector<std::string>* need_reset);
  /// Re-synchronizes subscriptions after shard restarts: under the
  /// unique registration lock (producers blocked, queues drained by the
  /// barrier) re-installs the delta sinks, captures a fresh snapshot,
  /// and emits kReset. No delta can race past the reset because nothing
  /// can be emitting while the lock is held and the barrier has drained
  /// every queue.
  void ResetSubscriptions(const std::vector<std::string>& names, Time ts);

  const EngineOptions options_;
  SourceCatalog catalog_;

  /// Guards the registry structure (adding queries) against readers
  /// (ingest fan-out, snapshots, metrics). Shard queues do their own
  /// locking, so ingest only needs shared access here.
  mutable std::shared_mutex mu_;
  QueryRegistry registry_;

  std::atomic<Time> clock_{-1};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> next_subscription_id_{1};

  // Watchdog (supervise mode).
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // Guarded by watchdog_mu_.
  std::thread watchdog_;

  // Per-shard progress tracking for the stall detector. Shard executor
  // addresses are stable while registered; UnregisterQuery purges the
  // entries of the shards it destroys.
  struct StallWatch {
    uint64_t processed = 0;
    std::chrono::steady_clock::time_point since;
    bool flagged = false;
  };
  std::mutex watch_mu_;
  std::map<const ShardExecutor*, StallWatch> watch_;  // Guarded by watch_mu_.

  // Batched ingest (batch_size > 1): acknowledged rows wait here until
  // the batch fills or a barrier flushes them. Rows are routed while
  // batch_mu_ is held, so concurrent producers cannot reorder two
  // batches on their way into one shard queue.
  struct PendingRow {
    int stream = -1;
    Tuple tuple;
    uint64_t seq = 0;  ///< WAL sequence (0: not logged).
  };
  std::mutex batch_mu_;
  std::vector<PendingRow> pending_;  // Guarded by batch_mu_.

  // One-tuple hold slot for the kReorderIngest fault.
  std::mutex hold_mu_;
  bool has_held_ = false;   // Guarded by hold_mu_.
  int held_stream_ = -1;    // Guarded by hold_mu_.
  Tuple held_;              // Guarded by hold_mu_.

  // --- Durability (empty dir: all of this stays inert) ---

  /// The WAL writer. Created at construction (or by AttachWal on the
  /// recovery path) and never replaced; internally synchronized, so
  /// appenders only need shared registry access.
  std::unique_ptr<durability::WalWriter> wal_;

  /// Serializes whole checkpoints against each other (the barrier +
  /// capture + write sequence must not interleave).
  std::mutex checkpoint_mu_;

  /// Guards the checkpoint bookkeeping below.
  mutable std::mutex durability_mu_;
  uint64_t next_checkpoint_id_ = 1;       // Guarded by durability_mu_.
  uint64_t checkpoints_written_ = 0;      // Guarded by durability_mu_.
  uint64_t checkpoint_failures_ = 0;      // Guarded by durability_mu_.
  uint64_t last_checkpoint_id_ = 0;       // Guarded by durability_mu_.
  size_t last_checkpoint_bytes_ = 0;      // Guarded by durability_mu_.
  double last_checkpoint_seconds_ = 0.0;  // Guarded by durability_mu_.
  uint64_t last_retained_tuples_ = 0;     // Guarded by durability_mu_.
  uint64_t last_truncated_tuples_ = 0;    // Guarded by durability_mu_.
  /// (checkpoint id, WAL cut) of the checkpoints still on disk, oldest
  /// first; bounds which WAL segments GC may drop.
  std::vector<std::pair<uint64_t, uint64_t>> checkpoint_history_;

  durability::RecoveryReport recovery_report_;

  // Background checkpointer (checkpoint_interval_ms > 0).
  std::mutex checkpointer_mu_;
  std::condition_variable checkpointer_cv_;
  bool checkpointer_stop_ = false;  // Guarded by checkpointer_mu_.
  std::thread checkpointer_;
};

}  // namespace upa

#endif  // UPA_ENGINE_ENGINE_H_
