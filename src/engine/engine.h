#ifndef UPA_ENGINE_ENGINE_H_
#define UPA_ENGINE_ENGINE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "engine/metrics.h"
#include "engine/registry.h"
#include "sql/catalog.h"
#include "workload/trace.h"

namespace upa {

/// Engine-wide defaults (per-query values override via QueryOptions).
struct EngineOptions {
  /// Shards per partitionable query.
  int default_shards = 1;
  /// Capacity of each shard's ingest queue, in tuples.
  size_t queue_capacity = 4096;
  /// Max tuples a shard worker drains per wakeup.
  size_t max_batch = 128;
  /// What producers do when a shard queue is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Profile every registered query (per-query QueryOptions::profile
  /// still wins when set). Phase breakdowns then show up in Metrics()
  /// and the Prometheus exposition.
  bool profile_queries = false;
};

/// Outcome of registering a query.
struct RegisterResult {
  bool ok = false;
  std::string error;          ///< Parse/validation failure, duplicate name.
  std::string name;
  int shards = 0;             ///< Shards the query actually runs on.
  bool partitioned = false;   ///< False: single-shard fallback.
  std::string partition_note; ///< Key summary, or the fallback reason.
};

/// The multi-query runtime: owns registered continuous queries, fans
/// shared input streams out to every query that binds them, and executes
/// each query on hash-partitioned shard workers.
///
/// Processing model. The caller ingests one merged, timestamp-ordered
/// event sequence (the Section 2 discipline). For each event the engine
/// routes a copy to every registered query reading that stream; within a
/// query the tuple goes to the shard selected by hashing the plan's
/// partition column (see AnalyzePartitionability), so all tuples that any
/// stateful operator must ever combine meet in the same replica, and each
/// replica observes a timestamp-monotone subsequence of the input. The
/// multiset union of the shard views therefore equals the view of a
/// single-threaded run at every barrier — the determinism property
/// engine_test checks against the reference oracle.
///
/// Thread safety: Ingest may be called from several producer threads, but
/// per-shard timestamp monotonicity is then the callers' contract (e.g.
/// partition the producers by stream). Registration, snapshots, and
/// metrics may be called concurrently with ingest.
class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Named-source registry backing SQL registration. Declare sources
  /// before registering queries that reference them.
  SourceCatalog* catalog() { return &catalog_; }

  /// Compiles `sql` against the catalog and registers the plan under
  /// `name`. The query starts consuming immediately.
  RegisterResult RegisterSql(const std::string& name, const std::string& sql,
                             const QueryOptions& options = {});

  /// Registers an already-built logical plan (annotated + validated).
  RegisterResult RegisterPlan(const std::string& name, PlanPtr plan,
                              const QueryOptions& options = {});

  /// Routes one event to every query bound to `stream_id`. Timestamps
  /// must be non-decreasing across calls.
  void Ingest(int stream_id, const Tuple& t);

  /// Convenience: Ingest every event of `trace` in order.
  void IngestTrace(const Trace& trace);

  /// Advances the engine clock without an arrival (idle input, paper
  /// Section 2.3.2: operators expire state even without new tuples). The
  /// new time reaches the shard replicas at the next barrier/snapshot.
  void AdvanceTo(Time now);

  /// Barrier: waits until every shard of every query (or of `name` only)
  /// has processed everything enqueued so far and ticked to the engine
  /// clock. Queue depths are zero afterwards (absent concurrent ingest).
  void Flush();
  bool FlushQuery(const std::string& name);

  /// Consistent view snapshot of a query at the engine clock (or at
  /// `at`, if later): barriers every shard, ticks replicas to the target
  /// time, and returns the multiset union of the shard views. Returns
  /// false if `name` is unknown.
  bool Snapshot(const std::string& name, std::vector<Tuple>* out,
                Time at = -1);

  /// Merged PipelineStats of a query's shards (barrier-free, may trail
  /// by one batch; call Flush first for exact totals).
  bool Stats(const std::string& name, PipelineStats* out) const;

  /// Barrier-free metrics snapshot of every query.
  EngineMetrics Metrics() const;

  /// Engine clock: the highest timestamp ingested or advanced to.
  Time clock() const { return clock_.load(std::memory_order_relaxed); }

  /// Stops every shard worker after draining enqueued work. Idempotent;
  /// also run by the destructor. Further Ingest calls are no-ops.
  void Stop();

 private:
  RegisterResult DoRegister(const std::string& name, PlanPtr plan,
                            const QueryOptions& options);

  const EngineOptions options_;
  SourceCatalog catalog_;

  /// Guards the registry structure (adding queries) against readers
  /// (ingest fan-out, snapshots, metrics). Shard queues do their own
  /// locking, so ingest only needs shared access here.
  mutable std::shared_mutex mu_;
  QueryRegistry registry_;

  std::atomic<Time> clock_{-1};
  std::atomic<bool> stopped_{false};
};

}  // namespace upa

#endif  // UPA_ENGINE_ENGINE_H_
