#ifndef UPA_ENGINE_ENGINE_H_
#define UPA_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault.h"
#include "engine/metrics.h"
#include "engine/registry.h"
#include "sql/catalog.h"
#include "workload/trace.h"

namespace upa {

/// Engine-wide defaults (per-query values override via QueryOptions).
struct EngineOptions {
  /// Shards per partitionable query.
  int default_shards = 1;
  /// Capacity of each shard's ingest queue, in tuples.
  size_t queue_capacity = 4096;
  /// Max tuples a shard worker drains per wakeup.
  size_t max_batch = 128;
  /// What producers do when a shard queue is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Profile every registered query (per-query QueryOptions::profile
  /// still wins when set). Phase breakdowns then show up in Metrics()
  /// and the Prometheus exposition.
  bool profile_queries = false;

  // --- Robustness layer (supervision, recovery, overload handling) ---

  /// Run a watchdog thread that restarts crashed shard workers, flags
  /// stalled ones, and drives overload degradation. Off by default: a
  /// plain engine has no background threads beyond its workers.
  bool supervise = false;
  /// Watchdog poll period.
  int watchdog_interval_ms = 20;
  /// When any shard queue of a query fills past this fraction of its
  /// capacity, the watchdog switches the query's replicas to degraded
  /// (wider lazy-expiration intervals: the Section 6.1 trade of memory
  /// for per-tuple CPU, results unchanged)...
  double degrade_high_watermark = 0.75;
  /// ...and back to normal once every queue drains below this fraction.
  double degrade_low_watermark = 0.25;
  /// A shard with a non-empty queue and no progress for this long is
  /// counted as stalled (visible in metrics; restart only fires on
  /// crashes, a slow shard is left alone).
  int stall_timeout_ms = 500;
  /// With supervise: keep per-shard window-bounded ingest logs so a
  /// crashed shard's replica can be rebuilt by replay.
  bool recover = true;
  /// Chaos-test fault injector (borrowed; must outlive the engine). Null
  /// in production.
  FaultInjector* fault_injector = nullptr;
  /// Force QueryOptions::check_invariants for every registered query.
  bool check_invariants = false;
};

/// Outcome of registering a query.
struct RegisterResult {
  bool ok = false;
  std::string error;          ///< Parse/validation failure, duplicate name.
  std::string name;
  int shards = 0;             ///< Shards the query actually runs on.
  bool partitioned = false;   ///< False: single-shard fallback.
  std::string partition_note; ///< Key summary, or the fallback reason.
};

/// The multi-query runtime: owns registered continuous queries, fans
/// shared input streams out to every query that binds them, and executes
/// each query on hash-partitioned shard workers.
///
/// Processing model. The caller ingests one merged, timestamp-ordered
/// event sequence (the Section 2 discipline). For each event the engine
/// routes a copy to every registered query reading that stream; within a
/// query the tuple goes to the shard selected by hashing the plan's
/// partition column (see AnalyzePartitionability), so all tuples that any
/// stateful operator must ever combine meet in the same replica, and each
/// replica observes a timestamp-monotone subsequence of the input. The
/// multiset union of the shard views therefore equals the view of a
/// single-threaded run at every barrier — the determinism property
/// engine_test checks against the reference oracle.
///
/// Thread safety: Ingest may be called from several producer threads, but
/// per-shard timestamp monotonicity is then the callers' contract (e.g.
/// partition the producers by stream). Registration, snapshots, and
/// metrics may be called concurrently with ingest.
class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Named-source registry backing SQL registration. Declare sources
  /// before registering queries that reference them.
  SourceCatalog* catalog() { return &catalog_; }

  /// Compiles `sql` against the catalog and registers the plan under
  /// `name`. The query starts consuming immediately.
  RegisterResult RegisterSql(const std::string& name, const std::string& sql,
                             const QueryOptions& options = {});

  /// Registers an already-built logical plan (annotated + validated).
  RegisterResult RegisterPlan(const std::string& name, PlanPtr plan,
                              const QueryOptions& options = {});

  /// Routes one event to every query bound to `stream_id`. Timestamps
  /// must be non-decreasing across calls.
  void Ingest(int stream_id, const Tuple& t);

  /// Convenience: Ingest every event of `trace` in order.
  void IngestTrace(const Trace& trace);

  /// Advances the engine clock without an arrival (idle input, paper
  /// Section 2.3.2: operators expire state even without new tuples). The
  /// new time reaches the shard replicas at the next barrier/snapshot.
  void AdvanceTo(Time now);

  /// Barrier: waits until every shard of every query (or of `name` only)
  /// has processed everything enqueued so far and ticked to the engine
  /// clock. Queue depths are zero afterwards (absent concurrent ingest).
  void Flush();
  bool FlushQuery(const std::string& name);

  /// Consistent view snapshot of a query at the engine clock (or at
  /// `at`, if later): barriers every shard, ticks replicas to the target
  /// time, and returns the multiset union of the shard views. Returns
  /// false if `name` is unknown.
  bool Snapshot(const std::string& name, std::vector<Tuple>* out,
                Time at = -1);

  /// Merged PipelineStats of a query's shards (barrier-free, may trail
  /// by one batch; call Flush first for exact totals).
  bool Stats(const std::string& name, PipelineStats* out) const;

  /// Barrier-free metrics snapshot of every query.
  EngineMetrics Metrics() const;

  /// Engine clock: the highest timestamp ingested or advanced to.
  Time clock() const { return clock_.load(std::memory_order_relaxed); }

  /// Stops every shard worker after draining enqueued work. Idempotent;
  /// also run by the destructor. Further Ingest calls are no-ops.
  void Stop();

  /// Runs one supervision pass inline: restarts crashed shards, updates
  /// stall flags, applies the overload watermarks. The watchdog thread
  /// calls this every watchdog_interval_ms; tests may call it directly
  /// for deterministic assertions (works even with supervise off).
  void PollSupervisor();

 private:
  RegisterResult DoRegister(const std::string& name, PlanPtr plan,
                            const QueryOptions& options);
  /// The fan-out path shared by Ingest and the fault hooks: advances the
  /// engine clock and routes the tuple to every bound query.
  void IngestImpl(int stream_id, const Tuple& t);
  /// Delivers `t`, flushing a held (reorder-fault) tuple around it in the
  /// right order: before `t` when strictly older, after when equal-ts
  /// (the swap the fault asks for).
  void DeliverOne(int stream_id, const Tuple& t);
  /// Delivers a held reorder-fault tuple, if any. Called by every
  /// barrier/snapshot entry point so a held tuple is never outstanding
  /// when results are observed.
  void FlushHeld();
  void WatchdogLoop();

  const EngineOptions options_;
  SourceCatalog catalog_;

  /// Guards the registry structure (adding queries) against readers
  /// (ingest fan-out, snapshots, metrics). Shard queues do their own
  /// locking, so ingest only needs shared access here.
  mutable std::shared_mutex mu_;
  QueryRegistry registry_;

  std::atomic<Time> clock_{-1};
  std::atomic<bool> stopped_{false};

  // Watchdog (supervise mode).
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // Guarded by watchdog_mu_.
  std::thread watchdog_;

  // Per-shard progress tracking for the stall detector. Shard executor
  // addresses are stable (queries are never removed).
  struct StallWatch {
    uint64_t processed = 0;
    std::chrono::steady_clock::time_point since;
    bool flagged = false;
  };
  std::mutex watch_mu_;
  std::map<const ShardExecutor*, StallWatch> watch_;  // Guarded by watch_mu_.

  // One-tuple hold slot for the kReorderIngest fault.
  std::mutex hold_mu_;
  bool has_held_ = false;   // Guarded by hold_mu_.
  int held_stream_ = -1;    // Guarded by hold_mu_.
  Tuple held_;              // Guarded by hold_mu_.
};

}  // namespace upa

#endif  // UPA_ENGINE_ENGINE_H_
