#include "engine/subscription.h"

namespace upa {

void SubscriptionHub::Add(uint64_t id, SubscriptionCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  subs_[id] = std::move(callback);
  active_.store(true, std::memory_order_release);
}

bool SubscriptionHub::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = subs_.erase(id) > 0;
  if (subs_.empty()) active_.store(false, std::memory_order_release);
  return erased;
}

size_t SubscriptionHub::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

void SubscriptionHub::EmitDelta(const Tuple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subs_.empty()) return;
  SubscriptionEvent ev;
  ev.kind = SubscriptionEvent::Kind::kDelta;
  ev.delta = t;
  deltas_emitted.fetch_add(1, std::memory_order_relaxed);
  for (auto& [id, cb] : subs_) cb(ev);
}

void SubscriptionHub::EmitWatermark(Time now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subs_.empty()) return;
  SubscriptionEvent ev;
  ev.kind = SubscriptionEvent::Kind::kWatermark;
  ev.time = now;
  watermarks_emitted.fetch_add(1, std::memory_order_relaxed);
  for (auto& [id, cb] : subs_) cb(ev);
}

void SubscriptionHub::EmitReset(const std::vector<Tuple>& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subs_.empty()) return;
  SubscriptionEvent ev;
  ev.kind = SubscriptionEvent::Kind::kReset;
  ev.snapshot = snapshot;
  resets_emitted.fetch_add(1, std::memory_order_relaxed);
  for (auto& [id, cb] : subs_) cb(ev);
}

}  // namespace upa
