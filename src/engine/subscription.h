#ifndef UPA_ENGINE_SUBSCRIPTION_H_
#define UPA_ENGINE_SUBSCRIPTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "core/update_pattern.h"
#include "exec/view.h"

namespace upa {

/// One event on a subscription stream. The event kinds mirror the paper's
/// update-pattern contract (Section 5.2): what a subscriber must absorb
/// depends only on the plan root's pattern, which Engine::Subscribe
/// reports in SubscriptionInfo.
///
///   kDelta      One output-stream tuple, exactly as the server-side view
///               applied it. Monotonic and WKS roots never produce
///               negative deltas (pinned by tests); WK roots produce
///               exp-stamped positives whose expirations are predictable;
///               only STR roots emit signed (negative) tuples. Group-by
///               roots emit (group, agg, count) replace records
///               (ViewDeltaKind::kGroupReplace).
///   kWatermark  The engine clock advanced to `time` at a barrier. For
///               WKS subscribers this implies FIFO expiry of every result
///               with exp <= time; for WK subscribers it expires the
///               predictable exp-stamped results; monotonic subscribers
///               may ignore it.
///   kReset      The subscribed query lost a shard between barriers (the
///               fault-injection / durability layers restarted it from a
///               replay, which rebuilds the replica without re-emitting
///               deltas). `snapshot` is a fresh consistent snapshot of the
///               whole view; the subscriber must discard its mirror and
///               reload, after which deltas resume. This is how a killed
///               and recovered shard is prevented from corrupting or
///               duplicating a subscription stream.
struct SubscriptionEvent {
  enum class Kind : uint8_t { kDelta = 0, kWatermark = 1, kReset = 2 };

  Kind kind = Kind::kDelta;
  Tuple delta;                  ///< kDelta only.
  Time time = 0;                ///< kWatermark: the new clock.
  std::vector<Tuple> snapshot;  ///< kReset only.
};

/// What a subscriber learns when it attaches (Engine::Subscribe): the
/// pattern contract of the delta stream, how the deltas must be
/// materialized, and the consistent starting snapshot that the following
/// deltas are relative to.
struct SubscriptionInfo {
  uint64_t id = 0;                ///< Handle for Engine::Unsubscribe.
  std::string query;
  UpdatePattern pattern = UpdatePattern::kMonotonic;
  ViewDeltaKind view_kind = ViewDeltaKind::kMultiset;
  std::vector<Tuple> snapshot;    ///< View contents at attach time.
};

/// Called for every event on a subscription, on an engine-internal thread
/// (shard workers deliver deltas; the barrier caller delivers watermarks
/// and resets). Callbacks are invoked under the hub lock, so they must be
/// fast and must never call back into the Engine (Unsubscribe from
/// another thread is fine and guarantees no in-flight callback on
/// return).
using SubscriptionCallback = std::function<void(const SubscriptionEvent&)>;

/// Per-query fan-out point from the shard replicas' delta sinks to the
/// attached subscribers. Owned by RegisteredQuery; all engine-side
/// subscription state lives here so the hot path (EmitDelta from a shard
/// worker) is one relaxed atomic load when nobody is subscribed.
class SubscriptionHub {
 public:
  SubscriptionHub() = default;

  SubscriptionHub(const SubscriptionHub&) = delete;
  SubscriptionHub& operator=(const SubscriptionHub&) = delete;

  /// True when at least one subscriber is attached (the shard delta sinks
  /// check this before taking the lock).
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Adds a subscriber under `id`. The caller (Engine::Subscribe) has
  /// already installed the delta sinks and captured the snapshot under a
  /// barrier, so the first delta this subscriber observes is the first
  /// one after its snapshot.
  void Add(uint64_t id, SubscriptionCallback callback);

  /// Removes a subscriber. On return no callback for `id` is in flight
  /// and none will fire again. Returns false for unknown ids.
  bool Remove(uint64_t id);

  size_t Count() const;

  /// Fans one view delta out to every subscriber. Called from shard
  /// worker threads via Pipeline::SetDeltaSink.
  void EmitDelta(const Tuple& t);

  /// Fans a barrier watermark out (Engine::Flush family, after the
  /// barrier succeeded).
  void EmitWatermark(Time now);

  /// Fans a reset (fresh snapshot) out after a shard restart.
  void EmitReset(const std::vector<Tuple>& snapshot);

  /// Shard-restart epoch the delta sinks were last attached under
  /// (compared against RegisteredQuery::TotalRestarts at barriers; a
  /// mismatch means some replica was rebuilt without a sink and the
  /// subscribers need a reset). Guarded by the engine's registration
  /// lock, not the hub mutex.
  uint64_t attached_restarts = 0;

  /// Lifetime counters, exposed via EngineMetrics.
  std::atomic<uint64_t> deltas_emitted{0};
  std::atomic<uint64_t> watermarks_emitted{0};
  std::atomic<uint64_t> resets_emitted{0};

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, SubscriptionCallback> subs_;  // Guarded by mu_.
  std::atomic<bool> active_{false};
};

}  // namespace upa

#endif  // UPA_ENGINE_SUBSCRIPTION_H_
