#include "engine/metrics.h"

#include <cstdio>

namespace upa {

std::string EngineMetrics::ToString() const {
  std::string out = "engine clock=" + std::to_string(clock) + "\n";
  char line[256];
  if (durability.enabled) {
    std::snprintf(line, sizeof(line),
                  "  durability: wal records=%llu bytes=%llu segments=%llu%s "
                  "checkpoints=%llu (last #%llu, %zuB, retained=%llu "
                  "truncated=%llu)%s\n",
                  static_cast<unsigned long long>(durability.wal_records),
                  static_cast<unsigned long long>(durability.wal_bytes),
                  static_cast<unsigned long long>(durability.wal_segments),
                  durability.wal_failed ? " FAILED" : "",
                  static_cast<unsigned long long>(durability.checkpoints),
                  static_cast<unsigned long long>(durability.last_checkpoint_id),
                  durability.last_checkpoint_bytes,
                  static_cast<unsigned long long>(
                      durability.last_retained_tuples),
                  static_cast<unsigned long long>(
                      durability.last_truncated_tuples),
                  durability.recovered ? " (recovered)" : "");
    out += line;
  }
  for (const QueryMetrics& q : queries) {
    std::snprintf(line, sizeof(line),
                  "  %-16s shards=%d%s in=%llu done=%llu drop=%llu "
                  "queue=%zu results=%zu state=%zuB neg=%llu %.0f tup/s\n",
                  q.name.c_str(), q.shards, q.partitioned ? "" : " (fallback)",
                  static_cast<unsigned long long>(q.enqueued),
                  static_cast<unsigned long long>(q.processed),
                  static_cast<unsigned long long>(q.dropped), q.queue_depth,
                  q.view_size, q.state_bytes,
                  static_cast<unsigned long long>(q.stats.negatives_delivered),
                  q.tuples_per_second);
    out += line;
    if (q.profiled) {
      const double total = q.phases.total_ns();
      std::snprintf(line, sizeof(line),
                    "    phases: processing %.1f ms, insertion %.1f ms, "
                    "expiration %.1f ms (%.0f%%/%.0f%%/%.0f%%)\n",
                    q.phases.processing_ns / 1e6, q.phases.insertion_ns / 1e6,
                    q.phases.expiration_ns / 1e6,
                    total > 0 ? 100.0 * q.phases.processing_ns / total : 0.0,
                    total > 0 ? 100.0 * q.phases.insertion_ns / total : 0.0,
                    total > 0 ? 100.0 * q.phases.expiration_ns / total : 0.0);
      out += line;
    }
    if (q.restarts > 0 || q.degraded || q.degrade_events > 0 ||
        q.stall_events > 0) {
      std::snprintf(line, sizeof(line),
                    "    robustness: restarts=%llu degraded=%s "
                    "degrade_events=%llu stall_events=%llu\n",
                    static_cast<unsigned long long>(q.restarts),
                    q.degraded ? "yes" : "no",
                    static_cast<unsigned long long>(q.degrade_events),
                    static_cast<unsigned long long>(q.stall_events));
      out += line;
    }
  }
  return out;
}

std::string EngineMetrics::ToPrometheus() const {
  std::string out;
  char line[256];
  auto series = [&](const char* name, const char* type,
                    const std::string& labels, double v) {
    // One TYPE line per family, emitted the first time the family shows up.
    if (out.find(std::string("# TYPE ") + name + " ") == std::string::npos) {
      out += std::string("# TYPE ") + name + " " + type + "\n";
    }
    if (labels.empty()) {
      std::snprintf(line, sizeof(line), "%s %.6g\n", name, v);
    } else {
      std::snprintf(line, sizeof(line), "%s{%s} %.6g\n", name, labels.c_str(),
                    v);
    }
    out += line;
  };
  std::snprintf(line, sizeof(line),
                "# TYPE upa_engine_clock gauge\nupa_engine_clock %lld\n",
                static_cast<long long>(clock));
  out += line;
  if (durability.enabled) {
    const DurabilityMetrics& d = durability;
    series("upa_checkpoint_wal_records_total", "counter", "",
           static_cast<double>(d.wal_records));
    series("upa_checkpoint_wal_bytes_total", "counter", "",
           static_cast<double>(d.wal_bytes));
    series("upa_checkpoint_wal_segments_total", "counter", "",
           static_cast<double>(d.wal_segments));
    series("upa_checkpoint_wal_torn_writes_total", "counter", "",
           static_cast<double>(d.wal_torn_writes));
    series("upa_checkpoint_wal_failed", "gauge", "", d.wal_failed ? 1 : 0);
    series("upa_checkpoint_total", "counter", "",
           static_cast<double>(d.checkpoints));
    series("upa_checkpoint_failures_total", "counter", "",
           static_cast<double>(d.checkpoint_failures));
    series("upa_checkpoint_last_id", "gauge", "",
           static_cast<double>(d.last_checkpoint_id));
    series("upa_checkpoint_last_bytes", "gauge", "",
           static_cast<double>(d.last_checkpoint_bytes));
    series("upa_checkpoint_last_seconds", "gauge", "",
           d.last_checkpoint_seconds);
    series("upa_checkpoint_retained_tuples", "gauge", "",
           static_cast<double>(d.last_retained_tuples));
    series("upa_checkpoint_truncated_tuples", "gauge", "",
           static_cast<double>(d.last_truncated_tuples));
    series("upa_checkpoint_non_durable_queries", "gauge", "",
           static_cast<double>(d.non_durable_queries));
    series("upa_recovery_recovered", "gauge", "", d.recovered ? 1 : 0);
    if (d.recovered) {
      series("upa_recovery_checkpoint_id", "gauge", "",
             static_cast<double>(d.recovery_checkpoint_id));
      series("upa_recovery_wal_records_replayed", "gauge", "",
             static_cast<double>(d.recovery_wal_records_replayed));
      series("upa_recovery_retained_replayed", "gauge", "",
             static_cast<double>(d.recovery_retained_replayed));
      series("upa_recovery_corrupt_checkpoints_skipped", "gauge", "",
             static_cast<double>(d.recovery_corrupt_checkpoints_skipped));
      series("upa_recovery_digest_mismatches", "gauge", "",
             static_cast<double>(d.recovery_digest_mismatches));
      series("upa_recovery_wal_corrupt_frames", "gauge", "",
             static_cast<double>(d.recovery_wal_corrupt_frames));
      series("upa_recovery_wal_gap", "gauge", "",
             d.recovery_wal_gap ? 1 : 0);
      series("upa_recovery_data_loss", "gauge", "",
             d.recovery_data_loss ? 1 : 0);
      series("upa_recovery_seconds", "gauge", "", d.recovery_seconds);
    }
  }
  for (const QueryMetrics& q : queries) {
    const std::string l = "query=\"" + q.name + "\"";
    series("upa_query_shards", "gauge", l, q.shards);
    series("upa_query_enqueued_total", "counter", l,
           static_cast<double>(q.enqueued));
    series("upa_query_processed_total", "counter", l,
           static_cast<double>(q.processed));
    series("upa_query_dropped_total", "counter", l,
           static_cast<double>(q.dropped));
    series("upa_query_queue_depth", "gauge", l,
           static_cast<double>(q.queue_depth));
    series("upa_query_state_bytes", "gauge", l,
           static_cast<double>(q.state_bytes));
    series("upa_query_view_size", "gauge", l,
           static_cast<double>(q.view_size));
    series("upa_query_tuples_per_second", "gauge", l, q.tuples_per_second);
    series("upa_query_restarts_total", "counter", l,
           static_cast<double>(q.restarts));
    series("upa_query_degraded", "gauge", l, q.degraded ? 1.0 : 0.0);
    series("upa_query_degrade_events_total", "counter", l,
           static_cast<double>(q.degrade_events));
    series("upa_query_stall_events_total", "counter", l,
           static_cast<double>(q.stall_events));
    series("upa_query_subscribers", "gauge", l,
           static_cast<double>(q.subscribers));
    series("upa_query_sub_events_total", "counter", l + ",kind=\"delta\"",
           static_cast<double>(q.sub_deltas));
    series("upa_query_sub_events_total", "counter", l + ",kind=\"watermark\"",
           static_cast<double>(q.sub_watermarks));
    series("upa_query_sub_events_total", "counter", l + ",kind=\"reset\"",
           static_cast<double>(q.sub_resets));
    series("upa_query_delivered_total", "counter", l,
           static_cast<double>(q.stats.delivered));
    series("upa_query_negatives_total", "counter", l,
           static_cast<double>(q.stats.negatives_delivered));
    series("upa_query_results_total", "counter", l + ",sign=\"positive\"",
           static_cast<double>(q.stats.results_pos));
    series("upa_query_results_total", "counter", l + ",sign=\"negative\"",
           static_cast<double>(q.stats.results_neg));
    // Heavy-light state partitioning (DESIGN.md Section 16). All zero
    // when the skew knob is off; exported unconditionally so dashboards
    // need not special-case the oracle path.
    series("upa_state_heavy_keys", "gauge", l,
           static_cast<double>(q.heavy.heavy_keys));
    series("upa_state_promotions_total", "counter", l,
           static_cast<double>(q.heavy.promotions));
    series("upa_state_demotions_total", "counter", l,
           static_cast<double>(q.heavy.demotions));
    series("upa_state_probes_total", "counter", l + ",partition=\"heavy\"",
           static_cast<double>(q.heavy.heavy_probe_hits));
    series("upa_state_probes_total", "counter", l + ",partition=\"light\"",
           static_cast<double>(q.heavy.light_probes));
    if (q.profiled) {
      series("upa_query_phase_seconds", "counter", l + ",phase=\"processing\"",
             q.phases.processing_ns / 1e9);
      series("upa_query_phase_seconds", "counter", l + ",phase=\"insertion\"",
             q.phases.insertion_ns / 1e9);
      series("upa_query_phase_seconds", "counter", l + ",phase=\"expiration\"",
             q.phases.expiration_ns / 1e9);
    }
  }
  return out;
}

namespace {

std::string HttpResponse(const char* status, const std::string& body,
                         bool include_body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: text/plain; version=0.0.4\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

}  // namespace

std::string HandleMetricsRequest(
    const std::string& request, const std::function<std::string()>& render) {
  // Parse only the request line: METHOD SP TARGET SP VERSION. Anything
  // that does not fit — binary garbage, missing tokens, embedded NUL,
  // oversized lines — is a client error, answered, never fatal.
  const size_t eol = request.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  if (line.empty() || line.size() > 8192 ||
      line.find('\0') != std::string::npos) {
    return HttpResponse("400 Bad Request", "bad request\n", true);
  }
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) {
    return HttpResponse("400 Bad Request", "bad request\n", true);
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) {
    return HttpResponse("400 Bad Request", "bad request\n", true);
  }
  const std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) {
    return HttpResponse("400 Bad Request", "bad request\n", true);
  }
  for (char c : method) {
    if (c < 'A' || c > 'Z') {
      return HttpResponse("400 Bad Request", "bad request\n", true);
    }
  }
  if (method != "GET" && method != "HEAD") {
    return HttpResponse("405 Method Not Allowed", "method not allowed\n",
                        true);
  }
  const size_t query_start = target.find('?');
  if (query_start != std::string::npos) target = target.substr(0, query_start);
  if (target != "/metrics" && target != "/") {
    return HttpResponse("404 Not Found", "not found\n", true);
  }
  return HttpResponse("200 OK", render(), method == "GET");
}

}  // namespace upa
