#include "engine/metrics.h"

#include <cstdio>

namespace upa {

std::string EngineMetrics::ToString() const {
  std::string out = "engine clock=" + std::to_string(clock) + "\n";
  char line[256];
  for (const QueryMetrics& q : queries) {
    std::snprintf(line, sizeof(line),
                  "  %-16s shards=%d%s in=%llu done=%llu drop=%llu "
                  "queue=%zu results=%zu state=%zuB neg=%llu %.0f tup/s\n",
                  q.name.c_str(), q.shards, q.partitioned ? "" : " (fallback)",
                  static_cast<unsigned long long>(q.enqueued),
                  static_cast<unsigned long long>(q.processed),
                  static_cast<unsigned long long>(q.dropped), q.queue_depth,
                  q.view_size, q.state_bytes,
                  static_cast<unsigned long long>(q.stats.negatives_delivered),
                  q.tuples_per_second);
    out += line;
    if (q.profiled) {
      const double total = q.phases.total_ns();
      std::snprintf(line, sizeof(line),
                    "    phases: processing %.1f ms, insertion %.1f ms, "
                    "expiration %.1f ms (%.0f%%/%.0f%%/%.0f%%)\n",
                    q.phases.processing_ns / 1e6, q.phases.insertion_ns / 1e6,
                    q.phases.expiration_ns / 1e6,
                    total > 0 ? 100.0 * q.phases.processing_ns / total : 0.0,
                    total > 0 ? 100.0 * q.phases.insertion_ns / total : 0.0,
                    total > 0 ? 100.0 * q.phases.expiration_ns / total : 0.0);
      out += line;
    }
  }
  return out;
}

std::string EngineMetrics::ToPrometheus() const {
  std::string out;
  char line[256];
  auto series = [&](const char* name, const char* type,
                    const std::string& labels, double v) {
    // One TYPE line per family, emitted the first time the family shows up.
    if (out.find(std::string("# TYPE ") + name + " ") == std::string::npos) {
      out += std::string("# TYPE ") + name + " " + type + "\n";
    }
    std::snprintf(line, sizeof(line), "%s{%s} %.6g\n", name, labels.c_str(), v);
    out += line;
  };
  std::snprintf(line, sizeof(line),
                "# TYPE upa_engine_clock gauge\nupa_engine_clock %lld\n",
                static_cast<long long>(clock));
  out += line;
  for (const QueryMetrics& q : queries) {
    const std::string l = "query=\"" + q.name + "\"";
    series("upa_query_shards", "gauge", l, q.shards);
    series("upa_query_enqueued_total", "counter", l,
           static_cast<double>(q.enqueued));
    series("upa_query_processed_total", "counter", l,
           static_cast<double>(q.processed));
    series("upa_query_dropped_total", "counter", l,
           static_cast<double>(q.dropped));
    series("upa_query_queue_depth", "gauge", l,
           static_cast<double>(q.queue_depth));
    series("upa_query_state_bytes", "gauge", l,
           static_cast<double>(q.state_bytes));
    series("upa_query_view_size", "gauge", l,
           static_cast<double>(q.view_size));
    series("upa_query_tuples_per_second", "gauge", l, q.tuples_per_second);
    series("upa_query_delivered_total", "counter", l,
           static_cast<double>(q.stats.delivered));
    series("upa_query_negatives_total", "counter", l,
           static_cast<double>(q.stats.negatives_delivered));
    series("upa_query_results_total", "counter", l + ",sign=\"positive\"",
           static_cast<double>(q.stats.results_pos));
    series("upa_query_results_total", "counter", l + ",sign=\"negative\"",
           static_cast<double>(q.stats.results_neg));
    if (q.profiled) {
      series("upa_query_phase_seconds", "counter", l + ",phase=\"processing\"",
             q.phases.processing_ns / 1e9);
      series("upa_query_phase_seconds", "counter", l + ",phase=\"insertion\"",
             q.phases.insertion_ns / 1e9);
      series("upa_query_phase_seconds", "counter", l + ",phase=\"expiration\"",
             q.phases.expiration_ns / 1e9);
    }
  }
  return out;
}

}  // namespace upa
