#include "engine/metrics.h"

#include <cstdio>

namespace upa {

std::string EngineMetrics::ToString() const {
  std::string out = "engine clock=" + std::to_string(clock) + "\n";
  char line[256];
  for (const QueryMetrics& q : queries) {
    std::snprintf(line, sizeof(line),
                  "  %-16s shards=%d%s in=%llu done=%llu drop=%llu "
                  "queue=%zu results=%zu state=%zuB neg=%llu %.0f tup/s\n",
                  q.name.c_str(), q.shards, q.partitioned ? "" : " (fallback)",
                  static_cast<unsigned long long>(q.enqueued),
                  static_cast<unsigned long long>(q.processed),
                  static_cast<unsigned long long>(q.dropped), q.queue_depth,
                  q.view_size, q.state_bytes,
                  static_cast<unsigned long long>(q.stats.negatives_delivered),
                  q.tuples_per_second);
    out += line;
  }
  return out;
}

}  // namespace upa
