#include "workload/lbl_generator.h"

#include <utility>

#include "common/macros.h"
#include "common/rng.h"

namespace upa {

Schema LblSchema() {
  return Schema({
      Field{"duration", ValueType::kInt},
      Field{"protocol", ValueType::kInt},
      Field{"payload", ValueType::kInt},
      Field{"src_ip", ValueType::kInt},
      Field{"dst_ip", ValueType::kInt},
  });
}

namespace {

int64_t SampleProtocol(const LblTraceConfig& cfg, Rng& rng) {
  const double u = rng.NextDouble();
  double acc = cfg.frac_ftp;
  if (u < acc) return kProtoFtp;
  acc += cfg.frac_telnet;
  if (u < acc) return kProtoTelnet;
  acc += cfg.frac_smtp;
  if (u < acc) return kProtoSmtp;
  acc += cfg.frac_http;
  if (u < acc) return kProtoHttp;
  return kProtoOther;
}

}  // namespace

Trace GenerateLblTrace(const LblTraceConfig& cfg) {
  UPA_CHECK(cfg.num_links >= 1);
  UPA_CHECK(cfg.duration >= 1);
  UPA_CHECK(cfg.num_sources >= 1);
  UPA_CHECK(cfg.frac_ftp + cfg.frac_telnet + cfg.frac_smtp + cfg.frac_http <=
            1.0);
  Rng rng(cfg.seed);
  const ZipfSampler sources(static_cast<size_t>(cfg.num_sources),
                            cfg.source_zipf);

  Trace trace;
  trace.schema = LblSchema();
  trace.num_streams = cfg.num_links;
  trace.events.reserve(static_cast<size_t>(cfg.duration) *
                       static_cast<size_t>(cfg.num_links));
  for (Time ts = 1; ts <= cfg.duration; ++ts) {
    for (int link = 0; link < cfg.num_links; ++link) {
      TraceEvent e;
      e.stream = link;
      e.tuple.ts = ts;
      const int64_t src =
          static_cast<int64_t>(sources.Sample(rng));
      // Destination hosts live behind the outgoing link: stable per-link
      // prefix plus a small host part.
      const int64_t dst =
          (static_cast<int64_t>(link) << 16) + rng.NextInRange(0, 255);
      e.tuple.fields = {
          Value{rng.NextInRange(1, 600)},          // duration (s)
          Value{SampleProtocol(cfg, rng)},         // protocol
          Value{rng.NextInRange(64, 1 << 20)},     // payload (bytes)
          Value{src},                              // src_ip
          Value{dst},                              // dst_ip
      };
      trace.events.push_back(std::move(e));
    }
  }
  return trace;
}

}  // namespace upa
