#ifndef UPA_WORKLOAD_LBL_GENERATOR_H_
#define UPA_WORKLOAD_LBL_GENERATOR_H_

#include <cstdint>

#include "common/schema.h"
#include "workload/trace.h"

namespace upa {

/// Protocol ids of the synthetic connection records. The mix is chosen so
/// that `protocol = ftp` is a selective predicate while `protocol =
/// telnet` matches roughly ten times as many tuples -- the property the
/// paper's Query 1 experiment relies on (Section 6.1: "telnet is a more
/// popular protocol type in the trace").
enum TraceProtocol : int64_t {
  kProtoOther = 0,
  kProtoFtp = 1,
  kProtoTelnet = 2,
  kProtoSmtp = 3,
  kProtoHttp = 4,
};

/// Column indexes of the LBL-style schema (see LblSchema()).
enum LblColumn : int {
  kColDuration = 0,
  kColProtocol = 1,
  kColPayload = 2,
  kColSrcIp = 3,
  kColDstIp = 4,
};

/// Configuration of the synthetic wide-area TCP connection trace.
///
/// This substitutes for the Internet Traffic Archive LBL trace of Section
/// 6.1 (unavailable offline); the generator reproduces the four properties
/// the experiments depend on: fixed arrival rate of ~1 tuple per link per
/// time unit, the ftp/telnet selectivity ratio, Zipf-skewed source
/// addresses (controlling join fan-out and distinct counts), and the split
/// into logical streams by outgoing link (destination).
struct LblTraceConfig {
  uint64_t seed = 42;
  /// Logical outgoing links; the trace carries one tuple per link per
  /// time unit, interleaved (Section 6.1's fixed arrival rate).
  int num_links = 2;
  /// Number of time units to generate.
  Time duration = 10000;
  /// Distinct source addresses and the skew of their popularity.
  int num_sources = 1000;
  double source_zipf = 1.0;
  /// Protocol mix (fractions; remainder is kProtoOther).
  double frac_ftp = 0.03;
  double frac_telnet = 0.30;
  double frac_smtp = 0.17;
  double frac_http = 0.40;
};

/// Schema of the generated connection records: (duration, protocol,
/// payload, src_ip, dst_ip), matching the paper's trace fields with the
/// system-assigned timestamp carried on Tuple::ts.
Schema LblSchema();

/// Generates a synthetic LBL-style trace.
Trace GenerateLblTrace(const LblTraceConfig& config);

}  // namespace upa

#endif  // UPA_WORKLOAD_LBL_GENERATOR_H_
