#ifndef UPA_WORKLOAD_TRACE_H_
#define UPA_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"

namespace upa {

/// One trace record: a base tuple arriving on a logical stream.
struct TraceEvent {
  int stream = 0;
  Tuple tuple;
};

/// A replayable multi-stream trace: events in non-decreasing timestamp
/// order, one shared schema (all logical streams of the experimental setup
/// are substreams of one packet trace, split by outgoing link).
struct Trace {
  Schema schema;
  int num_streams = 1;
  std::vector<TraceEvent> events;

  Time FirstTs() const { return events.empty() ? 0 : events.front().tuple.ts; }
  Time LastTs() const { return events.empty() ? 0 : events.back().tuple.ts; }
};

/// Writes `trace` as CSV: header `ts,stream,<field>...`, one row per event.
/// Returns false on I/O failure.
bool WriteTraceCsv(const Trace& trace, const std::string& path);

/// Reads a CSV trace written by WriteTraceCsv (or an externally converted
/// packet log with the same layout). Field types come from `schema`.
/// Returns false on I/O or parse failure.
bool ReadTraceCsv(const std::string& path, const Schema& schema, Trace* out);

}  // namespace upa

#endif  // UPA_WORKLOAD_TRACE_H_
