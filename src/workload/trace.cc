#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace upa {

bool WriteTraceCsv(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "ts,stream");
  for (const Field& field : trace.schema.fields()) {
    std::fprintf(f, ",%s", field.name.c_str());
  }
  std::fprintf(f, "\n");
  for (const TraceEvent& e : trace.events) {
    std::fprintf(f, "%lld,%d", static_cast<long long>(e.tuple.ts), e.stream);
    for (const Value& v : e.tuple.fields) {
      std::fprintf(f, ",%s", ToString(v).c_str());
    }
    std::fprintf(f, "\n");
  }
  const bool ok = std::fclose(f) == 0;
  return ok;
}

namespace {

/// Splits one CSV line (no quoting; the trace format is plain) in place.
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> cells;
  size_t start = 0;
  for (;;) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseValue(const std::string& cell, ValueType type, Value* out) {
  char* end = nullptr;
  switch (type) {
    case ValueType::kInt: {
      const long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str()) return false;
      *out = static_cast<int64_t>(v);
      return true;
    }
    case ValueType::kDouble: {
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) return false;
      *out = v;
      return true;
    }
    case ValueType::kString:
      *out = cell;
      return true;
  }
  return false;
}

}  // namespace

bool ReadTraceCsv(const std::string& path, const Schema& schema, Trace* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  out->schema = schema;
  out->num_streams = 1;
  out->events.clear();
  char buf[4096];
  bool header = true;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const std::vector<std::string> cells = SplitCsv(line);
    if (cells.size() != static_cast<size_t>(schema.num_fields()) + 2) {
      std::fclose(f);
      return false;
    }
    TraceEvent e;
    e.tuple.ts = std::atoll(cells[0].c_str());
    e.stream = std::atoi(cells[1].c_str());
    out->num_streams = std::max(out->num_streams, e.stream + 1);
    e.tuple.fields.resize(static_cast<size_t>(schema.num_fields()));
    for (int i = 0; i < schema.num_fields(); ++i) {
      if (!ParseValue(cells[static_cast<size_t>(i) + 2], schema.field(i).type,
                      &e.tuple.fields[static_cast<size_t>(i)])) {
        std::fclose(f);
        return false;
      }
    }
    out->events.push_back(std::move(e));
  }
  std::fclose(f);
  return true;
}

}  // namespace upa
